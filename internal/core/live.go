package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
	"github.com/amlight/intddos/internal/telemetry"
)

// LiveConfig parameterizes the wall-clock runtime of the mechanism.
type LiveConfig struct {
	// Features selects the model input vector (default: the paper's
	// 15 INT features).
	Features flow.FeatureSet
	// Models is the pre-trained ensemble.
	Models []ml.Classifier
	// Scaler standardizes snapshots; required.
	Scaler *ml.StandardScaler

	// PollInterval is the CentralServer polling period (default 5 ms
	// wall time).
	PollInterval time.Duration
	// PollBatch bounds records fetched per poll (default 256).
	PollBatch int
	// QueueCap bounds the prediction input channel (default 4096);
	// beyond it updates are shed and counted.
	QueueCap int
	// Workers is the number of prediction goroutines (default 1,
	// like the paper's single Python predictor).
	Workers int

	// ModelQuorum and VoteWindow mirror the simulated mechanism
	// (defaults 2-of-ensemble and 3).
	ModelQuorum int
	VoteWindow  int
	// SkipNewRecords restricts prediction to record updates (§III-3
	// strict reading).
	SkipNewRecords bool
}

// Live runs the four Figure 2 modules as concurrent goroutines over
// the wall clock — the deployment mode of the paper's production
// implementation — sharing the same flow table, database, and voting
// logic as the simulated Mechanism. Timestamps are wall-clock
// nanoseconds widened into the same Time domain the rest of the
// repository uses.
type Live struct {
	cfg LiveConfig

	mu      sync.Mutex // guards table, windows, decisions
	table   *flow.Table
	windows map[flow.Key][]int

	DB     *store.DB
	cursor uint64

	reqCh chan store.FlowRecord
	quit  chan struct{}
	wg    sync.WaitGroup

	decisions []Decision
	// OnDecision observes every final decision (called off the
	// prediction goroutine; keep it fast).
	OnDecision func(Decision)

	// Stats (atomics: read while running).
	Reports     atomic.Int64
	Snapshots   atomic.Int64
	Predictions atomic.Int64
	Shed        atomic.Int64
}

// NewLive validates cfg and builds the runtime.
func NewLive(cfg LiveConfig) (*Live, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("core: no models configured")
	}
	if cfg.Scaler == nil {
		return nil, errors.New("core: scaler required")
	}
	if cfg.Features == nil {
		cfg.Features = flow.INTFeatures()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ModelQuorum <= 0 {
		cfg.ModelQuorum = (len(cfg.Models) + 2) / 2
	}
	if cfg.ModelQuorum > len(cfg.Models) {
		cfg.ModelQuorum = (len(cfg.Models) + 1) / 2
	}
	if cfg.VoteWindow <= 0 {
		cfg.VoteWindow = 3
	}
	l := &Live{
		cfg:     cfg,
		table:   flow.NewTable(),
		windows: make(map[flow.Key][]int),
		DB:      store.New(),
		reqCh:   make(chan store.FlowRecord, cfg.QueueCap),
		quit:    make(chan struct{}),
	}
	l.DB.JournalNew = !cfg.SkipNewRecords
	return l, nil
}

// now returns the wall clock in the repository's Time domain.
func now() netsim.Time { return netsim.Time(time.Now().UnixNano()) }

// Start launches the CentralServer and Prediction goroutines.
func (l *Live) Start() {
	l.wg.Add(1)
	go l.centralServer()
	for w := 0; w < l.cfg.Workers; w++ {
		l.wg.Add(1)
		go l.predictionWorker()
	}
}

// Stop terminates the pipeline and waits for the goroutines. Pending
// queue items are abandoned.
func (l *Live) Stop() {
	close(l.quit)
	l.wg.Wait()
}

// HandleReport ingests one decoded INT report (INT Data Collection →
// Data Processor). Safe for concurrent use.
func (l *Live) HandleReport(r *telemetry.Report) {
	l.Reports.Add(1)
	l.Ingest(flow.FromINT(r, now()))
}

// Ingest folds a normalized observation into the flow table and
// writes its snapshot to the database. Safe for concurrent use.
func (l *Live) Ingest(pi flow.PacketInfo) {
	if pi.At == 0 {
		pi.At = now()
	}
	l.mu.Lock()
	st, _ := l.table.Observe(pi)
	feats := st.Features(nil, l.cfg.Features)
	key, reg, last, updates := st.Key, st.RegisteredAt, st.LastAt, st.Updates
	l.mu.Unlock()
	l.DB.UpsertFlow(key, feats, reg, last, updates, pi.Label, pi.AttackType)
	l.Snapshots.Add(1)
}

// Decisions returns a copy of the decision log.
func (l *Live) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, len(l.decisions))
	copy(out, l.decisions)
	return out
}

// centralServer polls the database journal and feeds the prediction
// queue, shedding when it is full.
func (l *Live) centralServer() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			recs, cur := l.DB.PollUpdates(l.cursor, l.cfg.PollBatch)
			l.cursor = cur
			l.DB.TrimJournal(cur)
			for _, rec := range recs {
				select {
				case l.reqCh <- rec:
				default:
					l.Shed.Add(1)
				}
			}
		}
	}
}

// predictionWorker standardizes snapshots, runs the ensemble, and
// aggregates decisions.
func (l *Live) predictionWorker() {
	defer l.wg.Done()
	scaled := make([]float64, len(l.cfg.Features))
	for {
		select {
		case <-l.quit:
			return
		case rec := <-l.reqCh:
			l.cfg.Scaler.TransformRow(scaled, rec.Features)
			votes := make([]int, len(l.cfg.Models))
			ones := 0
			for i, m := range l.cfg.Models {
				votes[i] = m.Predict(scaled)
				ones += votes[i]
			}
			l.Predictions.Add(1)
			raw := 0
			if ones >= l.cfg.ModelQuorum {
				raw = 1
			}
			l.finish(rec, raw, votes)
		}
	}
}

// finish applies window voting and logs the decision.
func (l *Live) finish(rec store.FlowRecord, raw int, votes []int) {
	t := now()
	l.mu.Lock()
	w := append(l.windows[rec.Key], raw)
	if len(w) > l.cfg.VoteWindow {
		w = w[len(w)-l.cfg.VoteWindow:]
	}
	l.windows[rec.Key] = w
	sum := 0
	for _, v := range w {
		sum += v
	}
	label := 0
	if 2*sum > len(w) {
		label = 1
	}
	d := Decision{
		Key:        rec.Key,
		Label:      label,
		Seq:        rec.Updates - 1,
		At:         t,
		Latency:    t - rec.UpdatedAt,
		Votes:      votes,
		Truth:      rec.Truth,
		AttackType: rec.AttackType,
	}
	l.decisions = append(l.decisions, d)
	cb := l.OnDecision
	l.mu.Unlock()

	l.DB.AppendPrediction(store.PredictionRecord{
		Key: rec.Key, Label: label, At: t, Latency: d.Latency,
		Votes: votes, Truth: rec.Truth, AttackType: rec.AttackType,
	})
	if cb != nil {
		cb(d)
	}
}
