package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/obs"
)

// HealthState is the pipeline's aggregate condition, ordered by
// severity. The live runtime walks healthy → degraded → shedding and
// back as faults fire and clear; /healthz reports the current state
// with detail.
type HealthState int32

const (
	// HealthHealthy: full fidelity — every model voting, no recent
	// faults, queues with headroom.
	HealthHealthy HealthState = iota
	// HealthDegraded: best-effort answers under partial failure — an
	// ensemble member marked unhealthy (quorum degraded to
	// majority-of-available), workers restarted after panics, or
	// store operations retried. No records are being lost.
	HealthDegraded
	// HealthShedding: records are being lost — worker queues full
	// (shed), a worker permanently down (restart budget exhausted),
	// or store writes dropped after exhausting retries.
	HealthShedding
)

// String returns the /healthz state name.
func (s HealthState) String() string {
	switch s {
	case HealthDegraded:
		return obs.StateDegraded
	case HealthShedding:
		return obs.StateShedding
	default:
		return obs.StateHealthy
	}
}

// modelHealth is one ensemble member's failure-tracking state
// machine: healthy until ModelFailThreshold consecutive scoring
// failures, then unhealthy (no votes, quorum degrades) until a probe
// after ModelProbeAfter succeeds. Shared by all prediction workers.
type modelHealth struct {
	name string

	mu        sync.Mutex
	consec    int       // consecutive failures
	unhealthy bool      // currently out of the ensemble
	since     time.Time // when marked unhealthy (probe timer)
	failures  int64     // lifetime failures, for reporting
}

// available reports whether the model should be scored for the next
// batch: healthy, or unhealthy but due for a recovery probe.
func (mh *modelHealth) available(now time.Time, probeAfter time.Duration) bool {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	return !mh.unhealthy || now.Sub(mh.since) >= probeAfter
}

// markFailure records one failed scoring call, returning whether the
// model just crossed into unhealthy. A failed probe re-arms the
// cooldown.
func (mh *modelHealth) markFailure(now time.Time, threshold int) (turnedUnhealthy bool) {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	mh.consec++
	mh.failures++
	if mh.unhealthy {
		mh.since = now // failed probe: restart the cooldown
		return false
	}
	if mh.consec >= threshold {
		mh.unhealthy = true
		mh.since = now
		return true
	}
	return false
}

// markSuccess records one successful scoring call, returning whether
// the model just recovered.
func (mh *modelHealth) markSuccess() (recovered bool) {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	mh.consec = 0
	if mh.unhealthy {
		mh.unhealthy = false
		return true
	}
	return false
}

// snapshot returns (unhealthy, lifetime failures) for reporting.
func (mh *modelHealth) snapshot() (bool, int64) {
	mh.mu.Lock()
	defer mh.mu.Unlock()
	return mh.unhealthy, mh.failures
}

// healthTracker is the pipeline-level state machine. Fault events
// raise the state immediately (a shed record flips shedding the
// moment it happens); reassess lowers it once conditions clear and
// the recency window expires. Transitions are recorded as structured
// events (component=health) and rendered back into the legacy
// transition-log strings by HealthTransitions.
type healthTracker struct {
	state atomic.Int32

	lastDegraded atomic.Int64 // unix nanos of the last degraded-class event
	lastShed     atomic.Int64 // unix nanos of the last shedding-class event
}

const healthLogCap = 32

// VoteAbsent marks a model that produced no vote for a record — it
// was unhealthy or its scoring call failed — in Decision.Votes. The
// quorum never counts absent votes.
const VoteAbsent = -1

// Health returns the pipeline's current aggregate state.
func (l *Live) Health() HealthState { return HealthState(l.health.state.Load()) }

// setHealthState moves the state machine, logging and counting the
// transition when the state actually changes.
func (l *Live) setHealthState(s HealthState, why string) {
	prev := HealthState(l.health.state.Swap(int32(s)))
	if prev == s {
		return
	}
	l.met.healthTransitions.With(s.String()).Inc()
	l.event("health transition", "component", "health",
		"from", prev.String(), "to", s.String(), "why", why)
}

// noteDegraded records a degraded-class fault event (model failure,
// worker restart, store retry) and raises the state if it is below
// degraded.
func (l *Live) noteDegraded(why string) {
	l.health.lastDegraded.Store(time.Now().UnixNano())
	if l.Health() < HealthDegraded {
		l.setHealthState(HealthDegraded, why)
	}
}

// noteShedding records a shedding-class fault event (shed record,
// dead worker, dropped store write) and raises the state to shedding.
// Shed events hit the event log at most once per second — under
// saturation every poll tick sheds, and a flood of identical events
// would wash the operational tail out of the ring.
func (l *Live) noteShedding(why string) {
	l.health.lastShed.Store(time.Now().UnixNano())
	sec := time.Now().Unix()
	if last := l.lastShedEvent.Load(); sec > last && l.lastShedEvent.CompareAndSwap(last, sec) {
		l.event("records shed", "component", "load", "why", why)
	}
	if l.Health() < HealthShedding {
		l.setHealthState(HealthShedding, why)
	}
}

// reassessHealth recomputes the state from current conditions,
// lowering it when faults have cleared. Called from the shard pollers
// once per tick, so recovery is observed within a poll interval of
// the recency window expiring.
func (l *Live) reassessHealth() {
	now := time.Now().UnixNano()
	recency := l.cfg.HealthRecency.Nanoseconds()
	target := HealthHealthy
	switch {
	case l.workersDown.Load() > 0,
		now-l.health.lastShed.Load() < recency,
		l.queueOccupancy() >= 0.9:
		target = HealthShedding
	case l.unhealthyModels() > 0,
		now-l.health.lastDegraded.Load() < recency:
		target = HealthDegraded
	}
	// Only transitions change anything; steady state is one atomic
	// load in setHealthState's Swap plus the comparisons above.
	l.setHealthState(target, "reassess")
}

// queueOccupancy returns the fraction of total worker-queue capacity
// in use.
func (l *Live) queueOccupancy() float64 {
	used, capacity := 0, 0
	for _, ch := range l.workerChs {
		used += len(ch)
		capacity += cap(ch)
	}
	if capacity == 0 {
		return 0
	}
	return float64(used) / float64(capacity)
}

// unhealthyModels counts ensemble members currently out of the vote.
func (l *Live) unhealthyModels() int {
	n := 0
	for _, mh := range l.modelHealth {
		if bad, _ := mh.snapshot(); bad {
			n++
		}
	}
	return n
}

// healthReport renders the /healthz body: state, accounting,
// per-model health, and the recent transition log.
func (l *Live) healthReport() obs.Health {
	st := l.Health()
	detail := []string{
		fmt.Sprintf("shards=%d workers=%d workers_down=%d worker_restarts=%d",
			l.nShards, l.cfg.Workers, l.workersDown.Load(), l.WorkerRestarts.Load()),
		fmt.Sprintf("polled=%d decided=%d shed=%d abandoned=%d store_retries=%d store_dropped=%d",
			l.Polled.Load(), l.DecisionCount(), l.Shed.Load(), l.Abandoned.Load(),
			l.StoreRetries.Load(), l.StoreDropped.Load()),
		fmt.Sprintf("queue_occupancy=%.2f", l.queueOccupancy()),
	}
	if l.cfg.CheckpointDir != "" {
		line := fmt.Sprintf("checkpoints=%d failures=%d last_success_unix=%.0f",
			l.Checkpoints.Load(), l.met.ckptFailures.Value(), l.met.ckptLastSuccess.Value())
		if r := l.restored; r != nil {
			line += fmt.Sprintf(" restored_seq=%d restored_flows=%d restored_pending=%d", r.Seq, r.Flows, r.JournalPending)
		}
		detail = append(detail, line)
	}
	for _, mh := range l.modelHealth {
		bad, fails := mh.snapshot()
		state := obs.StateHealthy
		if bad {
			state = "unhealthy"
		}
		detail = append(detail, fmt.Sprintf("model %s: %s (failures=%d)", mh.name, state, fails))
	}
	for _, entry := range l.HealthTransitions() {
		detail = append(detail, "transition: "+entry)
	}
	return obs.Health{State: st.String(), Detail: detail}
}

// HealthTransitions returns the recent transition log (oldest first),
// rendered from the structured event log's component=health events in
// the exact strings the pre-event-log implementation produced.
func (l *Live) HealthTransitions() []string {
	var out []string
	for _, e := range l.events.Recent() {
		if e.Attrs["component"] != "health" {
			continue
		}
		ts := e.Time.UTC().Format(time.RFC3339)
		switch e.Msg {
		case "health transition":
			out = append(out, fmt.Sprintf("%s %s -> %s (%s)", ts, e.Attrs["from"], e.Attrs["to"], e.Attrs["why"]))
		case "model recovered":
			out = append(out, fmt.Sprintf("%s model %s recovered", ts, e.Attrs["model"]))
		}
	}
	if len(out) > healthLogCap {
		out = out[len(out)-healthLogCap:]
	}
	return out
}

// scoreBatch runs the ensemble over the standardized batch with
// per-model fault isolation: each member scores through
// ml.TryPredictBatch (panic-contained, fallible path when wrapped);
// a member that fails or is marked unhealthy contributes VoteAbsent
// for every row and the member's health state machine advances.
// navail is how many members actually voted. With every member
// healthy the result is element-for-element identical to
// ml.EnsembleVotes — the fault-free path changes nothing. The outer
// votes header and the ones buffer are recycled from the worker's
// scratch across batches; only the flat per-row vote storage is
// allocated per call, because the rows are retained in Decisions.
func (l *Live) scoreBatch(s *batchScratch, X [][]float64) (votes [][]int, ones []int, navail int) {
	models := l.cfg.Models
	if cap(s.votes) < len(X) {
		s.votes = make([][]int, len(X))
	}
	if cap(s.ones) < len(X) {
		s.ones = make([]int, len(X))
	}
	votes = s.votes[:len(X)]
	ones = s.ones[:len(X)]
	for i := range ones {
		ones[i] = 0
	}
	flat := make([]int, len(X)*len(models))
	for i := range votes {
		votes[i] = flat[i*len(models) : (i+1)*len(models) : (i+1)*len(models)]
	}
	now := time.Now()
	for mi, m := range models {
		mh := l.modelHealth[mi]
		if !mh.available(now, l.cfg.ModelProbeAfter) {
			markAbsent(votes, mi)
			continue
		}
		labels, err := ml.TryPredictBatch(m, X)
		if err == nil && len(labels) != len(X) {
			err = fmt.Errorf("core: model %s returned %d labels for %d rows", mh.name, len(labels), len(X))
		}
		if err != nil {
			l.ModelFailures.Add(1)
			l.met.modelFailures.With(mh.name).Inc()
			if mh.markFailure(now, l.cfg.ModelFailThreshold) {
				l.met.modelHealthy.With(mh.name).Set(0)
			}
			l.noteDegraded("model " + mh.name + " failed")
			markAbsent(votes, mi)
			continue
		}
		if mh.markSuccess() {
			l.met.modelHealthy.With(mh.name).Set(1)
			l.event("model recovered", "component", "health", "model", mh.name)
		}
		navail++
		for i, lab := range labels {
			votes[i][mi] = lab
			ones[i] += lab
		}
	}
	return votes, ones, navail
}

// markAbsent fills one model's column with VoteAbsent.
func markAbsent(votes [][]int, mi int) {
	for i := range votes {
		votes[i][mi] = VoteAbsent
	}
}

// effectiveQuorum returns the attack-vote threshold for a batch
// scored by navail of the configured members. At full strength it is
// the configured quorum (the paper's 2-of-3); with members out it
// degrades to majority-of-available — 2-of-2, 1-of-1 — so detection
// keeps producing best-effort answers instead of silently requiring
// votes that can no longer arrive.
func (l *Live) effectiveQuorum(navail int) int {
	if navail >= len(l.cfg.Models) {
		return l.cfg.ModelQuorum
	}
	return navail/2 + 1
}
