//go:build !linux

package checkpoint

import "os"

// writeTempContents streams snap into the created temp file. Only
// Linux has the O_DIRECT fast path (see directio_linux.go); everywhere
// else the portable buffered writer is the whole story.
func writeTempContents(tmp *os.File, tmpName string, snap *Snapshot, opt EncodeOptions) (int64, uint32, error) {
	_ = tmpName
	return writeTempBuffered(tmp, snap, opt)
}
