package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"net/netip"
	"sort"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
)

// Wire layout:
//
//	magic "AMCK" | version u16 | sections...
//
// where each section is
//
//	id u8 | payloadLen u64 | payload | crc32(payload) u32
//
// Exactly one meta section (first), then one shard section per shard
// in index order, one windows section, one predictions section, and
// nothing after — extra bytes, duplicate or missing sections, unknown
// ids, and CRC mismatches all fail decode.
//
// Version 2 widens the shard section: each journal entry carries its
// global ingest stamp (u64 after the per-shard seq) and the section
// ends with the shard's Seq-sorted prediction log; prediction records
// are prefixed with their global decision stamp. The predictions
// section remains for version-1 files (and is written empty by v2
// encoders); both versions decode.
const (
	secMeta        = 1
	secShard       = 2
	secWindows     = 3
	secPredictions = 4
)

var magic = [4]byte{'A', 'M', 'C', 'K'}

// keyWireLen is the fixed wire size of a flow.Key: address-form byte,
// 16-byte source and destination, ports, protocol.
const keyWireLen = 1 + 16 + 16 + 2 + 2 + 1

// --- primitive writer/reader ---

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) boolb(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("checkpoint: truncated at offset %d (want %d more bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) boolb() bool  { return r.u8() != 0 }
func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	return string(r.take(n))
}

// count reads a u32 element count and sanity-bounds it against the
// remaining payload so a corrupt length cannot drive a giant
// allocation before the truncation check fires.
func (r *reader) count(minElemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minElemSize > 0 && n > (len(r.buf)-r.off)/minElemSize {
		r.fail("checkpoint: element count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

// --- flow.Key ---

// addrForm encodes an address's representation so decode rebuilds the
// exact same netip.Addr value: 0 = zero/invalid, 4 = IPv4, 6 = IPv6.
func addrForm(a netip.Addr) uint8 {
	switch {
	case !a.IsValid():
		return 0
	case a.Is4():
		return 4
	default:
		return 6
	}
}

func restoreAddr(form uint8, b [16]byte, r *reader) netip.Addr {
	switch form {
	case 0:
		return netip.Addr{}
	case 4:
		return netip.AddrFrom4([4]byte(b[12:16]))
	case 6:
		return netip.AddrFrom16(b)
	default:
		r.fail("checkpoint: unknown address form %d", form)
		return netip.Addr{}
	}
}

func putKey(w *writer, k flow.Key) {
	w.u8(addrForm(k.Src)<<4 | addrForm(k.Dst))
	src, dst := k.Src.As16(), k.Dst.As16()
	w.buf = append(w.buf, src[:]...)
	w.buf = append(w.buf, dst[:]...)
	w.u16(k.SrcPort)
	w.u16(k.DstPort)
	w.u8(uint8(k.Proto))
}

func getKey(r *reader) flow.Key {
	form := r.u8()
	var src, dst [16]byte
	copy(src[:], r.take(16))
	copy(dst[:], r.take(16))
	k := flow.Key{SrcPort: r.u16(), DstPort: r.u16(), Proto: netsim.Proto(r.u8())}
	if r.err != nil {
		return flow.Key{}
	}
	k.Src = restoreAddr(form>>4, src, r)
	k.Dst = restoreAddr(form&0xF, dst, r)
	return k
}

// wireKey returns the canonical sort key: a key's exact wire bytes.
func wireKey(k flow.Key) [keyWireLen]byte {
	var w writer
	putKey(&w, k)
	var out [keyWireLen]byte
	copy(out[:], w.buf)
	return out
}

// --- records ---

func putStats(w *writer, s flow.StatsSnapshot) {
	w.u64(uint64(s.N))
	w.f64(s.Last)
	w.f64(s.Sum)
	w.f64(s.Mean)
	w.f64(s.M2)
}

func getStats(r *reader) flow.StatsSnapshot {
	return flow.StatsSnapshot{
		N: int(r.u64()), Last: r.f64(), Sum: r.f64(), Mean: r.f64(), M2: r.f64(),
	}
}

func putState(w *writer, s flow.StateSnapshot) {
	putKey(w, s.Key)
	w.i64(int64(s.RegisteredAt))
	w.i64(int64(s.LastAt))
	w.u64(uint64(s.Updates))
	putStats(w, s.Size)
	putStats(w, s.IAT)
	putStats(w, s.Queue)
	putStats(w, s.HopLat)
	w.u32(uint32(s.LastIngress))
	w.boolb(s.HaveIngress)
	w.boolb(s.HasTelemetry)
	w.u64(uint64(s.AttackObs))
	w.boolb(s.LastTruth)
	w.str(s.AttackType)
}

func getState(r *reader) flow.StateSnapshot {
	return flow.StateSnapshot{
		Key:          getKey(r),
		RegisteredAt: netsim.Time(r.i64()),
		LastAt:       netsim.Time(r.i64()),
		Updates:      int(r.u64()),
		Size:         getStats(r),
		IAT:          getStats(r),
		Queue:        getStats(r),
		HopLat:       getStats(r),
		LastIngress:  netsim.Timestamp32(r.u32()),
		HaveIngress:  r.boolb(),
		HasTelemetry: r.boolb(),
		AttackObs:    int(r.u64()),
		LastTruth:    r.boolb(),
		AttackType:   r.str(),
	}
}

func putFlowRecord(w *writer, rec store.FlowRecord) {
	putKey(w, rec.Key)
	w.u32(uint32(len(rec.Features)))
	for _, f := range rec.Features {
		w.f64(f)
	}
	w.i64(int64(rec.RegisteredAt))
	w.i64(int64(rec.UpdatedAt))
	w.u64(uint64(rec.Updates))
	w.u64(rec.Version)
	w.boolb(rec.Truth)
	w.str(rec.AttackType)
}

func getFlowRecord(r *reader) store.FlowRecord {
	rec := store.FlowRecord{Key: getKey(r)}
	n := r.count(8)
	if n > 0 {
		rec.Features = make([]float64, n)
		for i := range rec.Features {
			rec.Features[i] = r.f64()
		}
	}
	rec.RegisteredAt = netsim.Time(r.i64())
	rec.UpdatedAt = netsim.Time(r.i64())
	rec.Updates = int(r.u64())
	rec.Version = r.u64()
	rec.Truth = r.boolb()
	rec.AttackType = r.str()
	return rec
}

// putPrediction writes the version-1 record layout; version 2
// prefixes it with the global decision sequence stamp (the field the
// per-shard logs are sorted and merged by).
func putPrediction(w *writer, p store.PredictionRecord, ver uint16) {
	if ver >= 2 {
		w.u64(p.Seq)
	}
	putKey(w, p.Key)
	w.i64(int64(p.Label))
	w.i64(int64(p.At))
	w.i64(int64(p.Latency))
	w.u32(uint32(len(p.Votes)))
	for _, v := range p.Votes {
		w.i64(int64(v))
	}
	w.boolb(p.Truth)
	w.str(p.AttackType)
}

func getPrediction(r *reader, ver uint16) store.PredictionRecord {
	var p store.PredictionRecord
	if ver >= 2 {
		p.Seq = r.u64()
	}
	p.Key = getKey(r)
	p.Label = int(r.i64())
	p.At = netsim.Time(r.i64())
	p.Latency = netsim.Time(r.i64())
	n := r.count(8)
	if n > 0 {
		p.Votes = make([]int, n)
		for i := range p.Votes {
			p.Votes[i] = int(r.i64())
		}
	}
	p.Truth = r.boolb()
	p.AttackType = r.str()
	return p
}

// --- sections ---

func appendSection(dst []byte, id uint8, payload []byte) []byte {
	dst = append(dst, id)
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// Encode serializes the snapshot into the canonical wire form of the
// current version: flows, records, and windows sorted by wire key, so
// equal snapshots encode to equal bytes regardless of map iteration
// order.
func Encode(s *Snapshot) []byte { return encode(s, Version) }

// EncodeV1 serializes the snapshot in the version-1 layout: journal
// entries without global stamps, per-shard prediction logs dropped in
// favour of the one global predictions section. It exists for
// rollback tooling and for the cross-version tests that pin "an old
// snapshot still restores" — new snapshots should use Encode. Callers
// wanting the version-1 view of a version-2 snapshot must fold the
// shard logs into s.Predictions themselves (see store.MergePredictions).
func EncodeV1(s *Snapshot) []byte { return encode(s, 1) }

func encode(s *Snapshot, ver uint16) []byte {
	out := append([]byte(nil), magic[:]...)
	out = binary.BigEndian.AppendUint16(out, ver)

	var meta writer
	meta.u32(uint32(s.Shards))
	meta.u64(s.Fingerprint)
	meta.u32(uint32(s.FeatureWidth))
	meta.u64(s.Seq)
	meta.i64(s.TakenAtUnixNano)
	out = appendSection(out, secMeta, meta.buf)

	for i, sh := range s.ShardStates {
		var w writer
		w.u32(uint32(i))

		table := append([]flow.StateSnapshot(nil), sh.Table...)
		sort.Slice(table, func(a, b int) bool {
			ka, kb := wireKey(table[a].Key), wireKey(table[b].Key)
			return bytes.Compare(ka[:], kb[:]) < 0
		})
		w.u32(uint32(len(table)))
		for _, st := range table {
			putState(&w, st)
		}

		flows := append([]store.FlowRecord(nil), sh.Store.Flows...)
		sort.Slice(flows, func(a, b int) bool {
			ka, kb := wireKey(flows[a].Key), wireKey(flows[b].Key)
			return bytes.Compare(ka[:], kb[:]) < 0
		})
		w.u32(uint32(len(flows)))
		for _, rec := range flows {
			putFlowRecord(&w, rec)
		}

		// The journal is a feed: append order is meaning, keep it.
		w.u32(uint32(len(sh.Store.Journal)))
		for _, e := range sh.Store.Journal {
			w.u64(e.Seq)
			if ver >= 2 {
				w.u64(e.GSeq)
			}
			putFlowRecord(&w, e.Rec)
		}
		w.u64(sh.Store.Seq)
		if ver >= 2 {
			// The shard's prediction log: Seq order is meaning, keep it.
			w.u32(uint32(len(sh.Store.Preds)))
			for _, p := range sh.Store.Preds {
				putPrediction(&w, p, ver)
			}
		}
		out = appendSection(out, secShard, w.buf)
	}

	var ww writer
	windows := append([]Window(nil), s.Windows...)
	sort.Slice(windows, func(a, b int) bool {
		ka, kb := wireKey(windows[a].Key), wireKey(windows[b].Key)
		return bytes.Compare(ka[:], kb[:]) < 0
	})
	ww.u32(uint32(len(windows)))
	for _, win := range windows {
		putKey(&ww, win.Key)
		ww.u32(uint32(len(win.Votes)))
		for _, v := range win.Votes {
			ww.i64(int64(v))
		}
	}
	out = appendSection(out, secWindows, ww.buf)

	var pw writer
	pw.u32(uint32(len(s.Predictions)))
	for _, p := range s.Predictions {
		putPrediction(&pw, p, ver)
	}
	out = appendSection(out, secPredictions, pw.buf)
	return out
}

// Decode parses a snapshot, rejecting anything malformed: wrong
// magic, future version, CRC mismatch, truncation, unknown or
// out-of-order sections, or trailing bytes. A rejected file loads no
// state at all.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+2 {
		return nil, fmt.Errorf("checkpoint: file too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:4])
	}
	ver := binary.BigEndian.Uint16(data[4:6])
	if ver == 0 || ver > Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (this binary reads ≤ %d)", ver, Version)
	}

	snap := &Snapshot{}
	off := 6
	sawMeta, sawWindows, sawPreds := false, false, false
	shardsSeen := 0
	for off < len(data) {
		if off+1+8 > len(data) {
			return nil, fmt.Errorf("checkpoint: truncated section header at offset %d", off)
		}
		id := data[off]
		plen := binary.BigEndian.Uint64(data[off+1 : off+9])
		off += 9
		if plen > uint64(len(data)-off) {
			return nil, fmt.Errorf("checkpoint: section %d truncated (claims %d bytes, %d remain)", id, plen, len(data)-off)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if off+4 > len(data) {
			return nil, fmt.Errorf("checkpoint: section %d missing CRC", id)
		}
		want := binary.BigEndian.Uint32(data[off : off+4])
		off += 4
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, fmt.Errorf("checkpoint: section %d CRC mismatch (got %08x, want %08x)", id, got, want)
		}

		r := &reader{buf: payload}
		switch id {
		case secMeta:
			if sawMeta {
				return nil, fmt.Errorf("checkpoint: duplicate meta section")
			}
			sawMeta = true
			snap.Shards = int(r.u32())
			snap.Fingerprint = r.u64()
			snap.FeatureWidth = int(r.u32())
			snap.Seq = r.u64()
			snap.TakenAtUnixNano = r.i64()
			if r.err == nil && (snap.Shards < 1 || snap.Shards > 1<<20) {
				return nil, fmt.Errorf("checkpoint: implausible shard count %d", snap.Shards)
			}
			snap.ShardStates = make([]ShardState, snap.Shards)
		case secShard:
			if !sawMeta {
				return nil, fmt.Errorf("checkpoint: shard section before meta")
			}
			idx := int(r.u32())
			if r.err == nil && (idx != shardsSeen || idx >= snap.Shards) {
				return nil, fmt.Errorf("checkpoint: shard section %d out of order (expected %d of %d)", idx, shardsSeen, snap.Shards)
			}
			var sh ShardState
			n := r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				sh.Table = append(sh.Table, getState(r))
			}
			n = r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				sh.Store.Flows = append(sh.Store.Flows, getFlowRecord(r))
			}
			entrySize := keyWireLen + 8
			if ver >= 2 {
				entrySize += 8
			}
			n = r.count(entrySize)
			for i := 0; i < n && r.err == nil; i++ {
				e := store.JournalEntry{Seq: r.u64()}
				if ver >= 2 {
					e.GSeq = r.u64()
				}
				e.Rec = getFlowRecord(r)
				sh.Store.Journal = append(sh.Store.Journal, e)
			}
			sh.Store.Seq = r.u64()
			if ver >= 2 {
				var prevSeq uint64
				n = r.count(keyWireLen + 8)
				for i := 0; i < n && r.err == nil; i++ {
					p := getPrediction(r, ver)
					// The merge cursor's invariant: each shard's log is
					// strictly Seq-sorted. A file violating it would
					// silently scramble the reconstructed global order,
					// so reject it here like any other corruption.
					if r.err == nil && p.Seq <= prevSeq {
						return nil, fmt.Errorf("checkpoint: shard %d prediction log not Seq-sorted (%d after %d)", idx, p.Seq, prevSeq)
					}
					prevSeq = p.Seq
					sh.Store.Preds = append(sh.Store.Preds, p)
				}
			}
			if r.err == nil {
				snap.ShardStates[idx] = sh
				shardsSeen++
			}
		case secWindows:
			if sawWindows {
				return nil, fmt.Errorf("checkpoint: duplicate windows section")
			}
			sawWindows = true
			n := r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				win := Window{Key: getKey(r)}
				nv := r.count(8)
				for j := 0; j < nv && r.err == nil; j++ {
					win.Votes = append(win.Votes, int(r.i64()))
				}
				snap.Windows = append(snap.Windows, win)
			}
		case secPredictions:
			if sawPreds {
				return nil, fmt.Errorf("checkpoint: duplicate predictions section")
			}
			sawPreds = true
			n := r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				snap.Predictions = append(snap.Predictions, getPrediction(r, ver))
			}
		default:
			return nil, fmt.Errorf("checkpoint: unknown section id %d", id)
		}
		if r.err != nil {
			return nil, r.err
		}
		if r.off != len(payload) {
			return nil, fmt.Errorf("checkpoint: section %d has %d trailing payload bytes", id, len(payload)-r.off)
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("checkpoint: no meta section")
	}
	if shardsSeen != snap.Shards {
		return nil, fmt.Errorf("checkpoint: %d shard sections for %d shards", shardsSeen, snap.Shards)
	}
	if !sawWindows || !sawPreds {
		return nil, fmt.Errorf("checkpoint: missing windows or predictions section")
	}
	return snap, nil
}
