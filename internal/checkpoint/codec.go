package checkpoint

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"
	"runtime"
	"slices"
	"sync"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
)

// Wire layout:
//
//	magic "AMCK" | version u16 | sections...
//
// where each section is
//
//	id u8 | payloadLen u64 | payload | crc32(payload) u32
//
// Exactly one meta section (first), then one shard section per shard
// in index order, one windows section, one predictions section, and
// nothing after — extra bytes, duplicate or missing sections, unknown
// ids, and CRC mismatches all fail decode.
//
// Version 2 widens the shard section: each journal entry carries its
// global ingest stamp (u64 after the per-shard seq) and the section
// ends with the shard's Seq-sorted prediction log; prediction records
// are prefixed with their global decision stamp. The predictions
// section remains for version-1 files (and is written empty by v2+
// encoders); all versions decode.
//
// Version 3 widens the meta section — flags u8 (bit 0: delta, bit 1:
// compressed sections) | baseSeq u64 | baseCRC u32 — and appends a
// removed-key list to each shard section and a removed-window list to
// the windows section (both empty on full snapshots). When the
// compressed flag is set, every section payload after meta is stored
// as rawLen u64 | deflate(raw payload); payloadLen and the section
// CRC cover the stored (compressed) bytes, so corruption is detected
// before inflation.
const (
	secMeta        = 1
	secShard       = 2
	secWindows     = 3
	secPredictions = 4
)

const (
	flagDelta      = 1 << 0
	flagCompressed = 1 << 1
)

var magic = [4]byte{'A', 'M', 'C', 'K'}

// keyWireLen is the fixed wire size of a flow.Key: address-form byte,
// 16-byte source and destination, ports, protocol.
const keyWireLen = 1 + 16 + 16 + 2 + 2 + 1

// minShardSectionLen is the smallest possible encoded shard section
// (header, empty-shard payload, CRC) across versions — the bound the
// decoder uses to reject a wire-supplied shard count no file of this
// size could actually carry.
const minShardSectionLen = 1 + 8 + 4 + 8

// EncodeOptions selects optional format-v3 encoding features.
type EncodeOptions struct {
	// Compress deflate-compresses every section payload after meta.
	// Smaller files, slower writes; restore auto-detects either way.
	Compress bool

	// Scratch, when non-nil, supplies the encoder's reusable buffers.
	// Long-lived periodic writers should keep one EncodeScratch for
	// the life of the pipeline (see its doc comment); one-shot
	// encoders leave it nil and fall back to the GC-drained pools.
	// Does not affect the encoded bytes.
	Scratch *EncodeScratch
}

// --- primitive writer/reader ---

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) boolb(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reserve extends the buffer by n bytes and returns the new region for
// the caller to fill with PutUint* at fixed offsets. One capacity
// check per record instead of one per field: the per-field append
// path's bounds checks were measurable across a hundred million field
// writes at the 1M-flow scale.
func (w *writer) reserve(n int) []byte {
	l := len(w.buf)
	if cap(w.buf) < l+n {
		c := 2 * cap(w.buf)
		if c < l+n {
			c = l + n
		}
		nb := make([]byte, l, c)
		copy(nb, w.buf)
		w.buf = nb
	}
	w.buf = w.buf[:l+n]
	return w.buf[l : l+n]
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail("checkpoint: truncated at offset %d (want %d more bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}
func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}
func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) boolb() bool  { return r.u8() != 0 }
func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	return string(r.take(n))
}

// count reads a u32 element count and sanity-bounds it against the
// remaining payload so a corrupt length cannot drive a giant
// allocation before the truncation check fires.
func (r *reader) count(minElemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minElemSize > 0 && n > (len(r.buf)-r.off)/minElemSize {
		r.fail("checkpoint: element count %d exceeds remaining payload", n)
		return 0
	}
	return n
}

// --- flow.Key ---

// addrForm encodes an address's representation so decode rebuilds the
// exact same netip.Addr value: 0 = zero/invalid, 4 = IPv4, 6 = IPv6.
func addrForm(a netip.Addr) uint8 {
	switch {
	case !a.IsValid():
		return 0
	case a.Is4():
		return 4
	default:
		return 6
	}
}

func restoreAddr(form uint8, b [16]byte, r *reader) netip.Addr {
	switch form {
	case 0:
		return netip.Addr{}
	case 4:
		return netip.AddrFrom4([4]byte(b[12:16]))
	case 6:
		return netip.AddrFrom16(b)
	default:
		r.fail("checkpoint: unknown address form %d", form)
		return netip.Addr{}
	}
}

// wireKey returns the canonical sort key: a key's exact wire bytes,
// built in place — the canonical sort computes one per element, and an
// allocation here would dominate large encodes.
func wireKey(k flow.Key) (out [keyWireLen]byte) {
	out[0] = addrForm(k.Src)<<4 | addrForm(k.Dst)
	src, dst := k.Src.As16(), k.Dst.As16()
	copy(out[1:17], src[:])
	copy(out[17:33], dst[:])
	binary.BigEndian.PutUint16(out[33:35], k.SrcPort)
	binary.BigEndian.PutUint16(out[35:37], k.DstPort)
	out[37] = uint8(k.Proto)
	return out
}

func putKey(w *writer, k flow.Key) {
	kb := wireKey(k)
	w.buf = append(w.buf, kb[:]...)
}

func getKey(r *reader) flow.Key {
	form := r.u8()
	var src, dst [16]byte
	copy(src[:], r.take(16))
	copy(dst[:], r.take(16))
	k := flow.Key{SrcPort: r.u16(), DstPort: r.u16(), Proto: netsim.Proto(r.u8())}
	if r.err != nil {
		return flow.Key{}
	}
	k.Src = restoreAddr(form>>4, src, r)
	k.Dst = restoreAddr(form&0xF, dst, r)
	return k
}

// sortKey is a wire key repacked as five big-endian u64 words (the
// trailing 6 bytes left-aligned into the last word), so the canonical
// sort compares machine integers instead of calling bytes.Compare on
// 38-byte slices. Big-endian word order compares identically to byte
// order, and in practice the first differing word is reached on the
// first or second compare — real keys share the long IPv4-in-IPv6
// mapped prefix.
type sortKey struct{ w [5]uint64 }

func makeSortKey(k flow.Key) sortKey {
	kb := wireKey(k)
	return sortKey{w: [5]uint64{
		binary.BigEndian.Uint64(kb[0:8]),
		binary.BigEndian.Uint64(kb[8:16]),
		binary.BigEndian.Uint64(kb[16:24]),
		binary.BigEndian.Uint64(kb[24:32]),
		uint64(binary.BigEndian.Uint32(kb[32:36]))<<32 |
			uint64(binary.BigEndian.Uint16(kb[36:38]))<<16,
	}}
}

func (a *sortKey) compare(b *sortKey) int {
	for i := range a.w {
		if a.w[i] != b.w[i] {
			if a.w[i] < b.w[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// keyIdx pairs a precomputed sort key with the element's position.
// The sort moves the pairs themselves (slices.SortFunc on a concrete
// struct — no interface dispatch, no reflect swap), so every compare
// touches adjacent memory instead of chasing idx into a separate key
// array.
type keyIdx struct {
	k sortKey
	i int32
}

// sortPairPool and sortIdxPool recycle the canonical sort's scratch
// arrays (~90 MB per 1M-flow encode) for encoders without an
// EncodeScratch. Like sectionBufPool, the point is keeping
// steady-state checkpoint writes allocation-quiet: every megabyte not
// allocated is GC work not done while the op runs.
var (
	sortPairPool sync.Pool
	sortIdxPool  sync.Pool
)

// sortedIndex returns the permutation that orders in by each element's
// canonical wire key, without moving the elements — the encoders walk
// the index instead of materializing a sorted copy, which at 1M flows
// saves hundreds of MB of fresh allocation inside the write path.
// Keys are computed once per element up front — computing them inside
// the comparator (the old shape) cost O(n log n) key encodings and
// dominated large snapshot encodes. The returned index may be handed
// back via releaseSortIndex once the caller is done walking it.
func sortedIndex[T any](es *EncodeScratch, in []T, keyOf func(*T) flow.Key) []int32 {
	n := len(in)
	var pairs []keyIdx
	var idx []int32
	if es != nil {
		es.mu.Lock()
		ps, pok := es.pairs.get(n)
		is, iok := es.idxs.get(n)
		es.mu.Unlock()
		if pok {
			pairs = ps[:n]
		}
		if iok {
			idx = is[:n]
		}
	} else {
		if v, ok := sortPairPool.Get().(*[]keyIdx); ok && cap(*v) >= n {
			pairs = (*v)[:n]
		}
		if v, ok := sortIdxPool.Get().(*[]int32); ok && cap(*v) >= n {
			idx = (*v)[:n]
		}
	}
	if pairs == nil {
		pairs = make([]keyIdx, n)
	}
	if idx == nil {
		idx = make([]int32, n)
	}
	for i := range in {
		pairs[i] = keyIdx{k: makeSortKey(keyOf(&in[i])), i: int32(i)}
	}
	slices.SortFunc(pairs, func(a, b keyIdx) int { return a.k.compare(&b.k) })
	for i := range pairs {
		idx[i] = pairs[i].i
	}
	if es != nil {
		es.mu.Lock()
		es.pairs.put(pairs, maxScratchBufs)
		es.mu.Unlock()
	} else {
		pp := pairs[:0]
		sortPairPool.Put(&pp)
	}
	return idx
}

// releaseSortIndex recycles a sortedIndex result. Callers that cannot
// prove the index is dead just drop it instead.
func releaseSortIndex(es *EncodeScratch, idx []int32) {
	if cap(idx) < 1<<10 {
		return
	}
	if es != nil {
		es.mu.Lock()
		es.idxs.put(idx, maxScratchBufs)
		es.mu.Unlock()
		return
	}
	ip := idx[:0]
	sortIdxPool.Put(&ip)
}

// sortByWireKey returns a copy of in ordered by each element's
// canonical wire key. Only for small inputs (removal lists, the
// in-place sort helpers); the section builders use sortedIndex.
func sortByWireKey[T any](in []T, keyOf func(*T) flow.Key) []T {
	if len(in) == 0 {
		return nil
	}
	out := make([]T, len(in))
	idx := sortedIndex(nil, in, keyOf)
	for o, i := range idx {
		out[o] = in[i]
	}
	releaseSortIndex(nil, idx)
	return out
}

func sortedKeys(in []flow.Key) []flow.Key {
	return sortByWireKey(in, func(k *flow.Key) flow.Key { return *k })
}

// SortWindows orders windows by canonical wire key in place — the
// order the encoder writes them. The capture path sorts after the
// barrier releases so two captures of identical state are equal as
// values, not merely as encoded bytes.
func SortWindows(ws []Window) {
	copy(ws, sortByWireKey(ws, func(w *Window) flow.Key { return w.Key }))
}

// SortKeys orders a key list by canonical wire key in place.
func SortKeys(ks []flow.Key) {
	copy(ks, sortedKeys(ks))
}

// --- records ---
//
// The record writers fill a reserved region at fixed offsets instead
// of appending field by field: same bytes, one capacity check per
// record. Variable-length strings still go through the append path.

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// putKeyAt writes k's wire form into the first keyWireLen bytes of b.
func putKeyAt(b []byte, k flow.Key) {
	kb := wireKey(k)
	copy(b, kb[:])
}

// statsWireLen is the fixed wire size of a flow.StatsSnapshot.
const statsWireLen = 8 + 4*8

func putStatsAt(b []byte, s *flow.StatsSnapshot) {
	binary.BigEndian.PutUint64(b[0:], uint64(s.N))
	binary.BigEndian.PutUint64(b[8:], math.Float64bits(s.Last))
	binary.BigEndian.PutUint64(b[16:], math.Float64bits(s.Sum))
	binary.BigEndian.PutUint64(b[24:], math.Float64bits(s.Mean))
	binary.BigEndian.PutUint64(b[32:], math.Float64bits(s.M2))
}

func getStats(r *reader) flow.StatsSnapshot {
	return flow.StatsSnapshot{
		N: int(r.u64()), Last: r.f64(), Sum: r.f64(), Mean: r.f64(), M2: r.f64(),
	}
}

// stateFixedLen is everything in a state record up to the trailing
// variable-length AttackType string.
const stateFixedLen = keyWireLen + 3*8 + 4*statsWireLen + 4 + 1 + 1 + 8 + 1

func putState(w *writer, s *flow.StateSnapshot) {
	b := w.reserve(stateFixedLen)
	putKeyAt(b, s.Key)
	off := keyWireLen
	binary.BigEndian.PutUint64(b[off:], uint64(s.RegisteredAt))
	binary.BigEndian.PutUint64(b[off+8:], uint64(s.LastAt))
	binary.BigEndian.PutUint64(b[off+16:], uint64(s.Updates))
	off += 24
	putStatsAt(b[off:], &s.Size)
	putStatsAt(b[off+statsWireLen:], &s.IAT)
	putStatsAt(b[off+2*statsWireLen:], &s.Queue)
	putStatsAt(b[off+3*statsWireLen:], &s.HopLat)
	off += 4 * statsWireLen
	binary.BigEndian.PutUint32(b[off:], uint32(s.LastIngress))
	b[off+4] = boolByte(s.HaveIngress)
	b[off+5] = boolByte(s.HasTelemetry)
	binary.BigEndian.PutUint64(b[off+6:], uint64(s.AttackObs))
	b[off+14] = boolByte(s.LastTruth)
	w.str(s.AttackType)
}

func getState(r *reader) flow.StateSnapshot {
	return flow.StateSnapshot{
		Key:          getKey(r),
		RegisteredAt: netsim.Time(r.i64()),
		LastAt:       netsim.Time(r.i64()),
		Updates:      int(r.u64()),
		Size:         getStats(r),
		IAT:          getStats(r),
		Queue:        getStats(r),
		HopLat:       getStats(r),
		LastIngress:  netsim.Timestamp32(r.u32()),
		HaveIngress:  r.boolb(),
		HasTelemetry: r.boolb(),
		AttackObs:    int(r.u64()),
		LastTruth:    r.boolb(),
		AttackType:   r.str(),
	}
}

func putFlowRecord(w *writer, rec *store.FlowRecord) {
	n := len(rec.Features)
	b := w.reserve(keyWireLen + 4 + 8*n + 4*8 + 1)
	putKeyAt(b, rec.Key)
	off := keyWireLen
	binary.BigEndian.PutUint32(b[off:], uint32(n))
	off += 4
	for _, f := range rec.Features {
		binary.BigEndian.PutUint64(b[off:], math.Float64bits(f))
		off += 8
	}
	binary.BigEndian.PutUint64(b[off:], uint64(rec.RegisteredAt))
	binary.BigEndian.PutUint64(b[off+8:], uint64(rec.UpdatedAt))
	binary.BigEndian.PutUint64(b[off+16:], uint64(rec.Updates))
	binary.BigEndian.PutUint64(b[off+24:], rec.Version)
	b[off+32] = boolByte(rec.Truth)
	w.str(rec.AttackType)
}

func getFlowRecord(r *reader) store.FlowRecord {
	rec := store.FlowRecord{Key: getKey(r)}
	n := r.count(8)
	if n > 0 {
		rec.Features = make([]float64, n)
		for i := range rec.Features {
			rec.Features[i] = r.f64()
		}
	}
	rec.RegisteredAt = netsim.Time(r.i64())
	rec.UpdatedAt = netsim.Time(r.i64())
	rec.Updates = int(r.u64())
	rec.Version = r.u64()
	rec.Truth = r.boolb()
	rec.AttackType = r.str()
	return rec
}

// putPrediction writes the version-1 record layout; version 2+
// prefixes it with the global decision sequence stamp (the field the
// per-shard logs are sorted and merged by).
func putPrediction(w *writer, p *store.PredictionRecord, ver uint16) {
	nv := len(p.Votes)
	fixed := keyWireLen + 3*8 + 4 + 8*nv + 1
	if ver >= 2 {
		fixed += 8
	}
	b := w.reserve(fixed)
	off := 0
	if ver >= 2 {
		binary.BigEndian.PutUint64(b, p.Seq)
		off = 8
	}
	putKeyAt(b[off:], p.Key)
	off += keyWireLen
	binary.BigEndian.PutUint64(b[off:], uint64(p.Label))
	binary.BigEndian.PutUint64(b[off+8:], uint64(p.At))
	binary.BigEndian.PutUint64(b[off+16:], uint64(p.Latency))
	binary.BigEndian.PutUint32(b[off+24:], uint32(nv))
	off += 28
	for _, v := range p.Votes {
		binary.BigEndian.PutUint64(b[off:], uint64(int64(v)))
		off += 8
	}
	b[off] = boolByte(p.Truth)
	w.str(p.AttackType)
}

func getPrediction(r *reader, ver uint16) store.PredictionRecord {
	var p store.PredictionRecord
	if ver >= 2 {
		p.Seq = r.u64()
	}
	p.Key = getKey(r)
	p.Label = int(r.i64())
	p.At = netsim.Time(r.i64())
	p.Latency = netsim.Time(r.i64())
	n := r.count(8)
	if n > 0 {
		p.Votes = make([]int, n)
		for i := range p.Votes {
			p.Votes[i] = int(r.i64())
		}
	}
	p.Truth = r.boolb()
	p.AttackType = r.str()
	return p
}

// --- section builders ---
//
// Each section payload is built independently (meta first, then one
// per shard, windows, predictions), which is what lets WriteStream
// encode them on parallel goroutines and stream each one to disk as
// it completes instead of materializing the whole file in one buffer.

type sectionJob struct {
	id    uint8
	build func() []byte
}

// sectionBufPool recycles section payload buffers across builds and
// across checkpoints. At a million flows a shard section runs to
// ~110 MB; without reuse every periodic checkpoint allocates that
// afresh and pays the kernel's first-touch page zeroing for it. The
// pool hands a built payload back once writeStream has emitted it, so
// steady-state writes touch only warm memory. Entries are *[]byte to
// keep Put allocation-free.
//
// sync.Pool is drained by the garbage collector, which is right for
// one-shot encoders (tests, tooling) but wrong for a pipeline that
// checkpoints periodically — many GC cycles pass between writes and
// the pool would always come up empty. Long-lived writers pass an
// EncodeScratch instead (EncodeOptions.Scratch); the pool is the
// fallback when they don't.
var sectionBufPool sync.Pool

// getSectionBuf returns an empty buffer with at least est capacity,
// reusing a pooled one when it is big enough.
func getSectionBuf(es *EncodeScratch, est int) []byte {
	if es != nil {
		es.mu.Lock()
		b, ok := es.bufs.get(est)
		es.mu.Unlock()
		if ok {
			return b
		}
		return make([]byte, 0, est)
	}
	if v, ok := sectionBufPool.Get().(*[]byte); ok && cap(*v) >= est {
		return (*v)[:0]
	}
	return make([]byte, 0, est)
}

func putSectionBuf(es *EncodeScratch, b []byte) {
	// Tiny buffers (meta sections, small-table tests) are cheap to
	// allocate and would crowd the big ones out of the pool's slots.
	if cap(b) < 1<<16 {
		return
	}
	if es != nil {
		es.mu.Lock()
		es.bufs.put(b, maxScratchBufs)
		es.mu.Unlock()
		return
	}
	b = b[:0]
	sectionBufPool.Put(&b)
}

// freelist is a tiny explicit free-list of slices, capacity-aware on
// get. Unlike sync.Pool it survives garbage collection — entries stay
// until taken — which is the point: it backs EncodeScratch, whose
// whole job is keeping buffers warm across checkpoint intervals that
// span many GC cycles.
type freelist[T any] struct{ items [][]T }

// get returns the smallest slice with capacity >= n. Best fit, not
// first fit: a write cycle asks for several distinct sizes in an
// order that differs from the order the buffers came back in, and a
// small request that grabs the biggest buffer forces the next big
// request to miss and reallocate — the steady state then never goes
// allocation-quiet.
func (f *freelist[T]) get(n int) ([]T, bool) {
	best := -1
	for i, it := range f.items {
		if cap(it) >= n && (best < 0 || cap(it) < cap(f.items[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	it := f.items[best]
	last := len(f.items) - 1
	f.items[best] = f.items[last]
	f.items[last] = nil
	f.items = f.items[:last]
	return it[:0], true
}

func (f *freelist[T]) put(s []T, max int) {
	if len(f.items) < max {
		f.items = append(f.items, s[:0])
	}
}

// maxScratchBufs bounds each freelist: enough for every concurrently
// in-flight section build plus the emitted one being recycled.
const maxScratchBufs = 10

// EncodeScratch owns the encoder's reusable buffers — section
// payloads and canonical-sort scratch — across checkpoint writes. A
// long-lived writer (core.Live) keeps one and passes it via
// EncodeOptions.Scratch so steady-state checkpoints run
// allocation-quiet: on a single-core host the alternative is not just
// allocator time but whole GC cycles landing inside the write,
// marking the pipeline's multi-gigabyte heap. Safe for concurrent use
// by one writeStream's section builders; distinct writers need
// distinct scratches or none.
type EncodeScratch struct {
	mu    sync.Mutex
	bufs  freelist[byte]
	pairs freelist[keyIdx]
	idxs  freelist[int32]
}

func buildMeta(s *Snapshot, ver uint16, compress bool) []byte {
	var meta writer
	meta.buf = make([]byte, 0, 64)
	meta.u32(uint32(s.Shards))
	meta.u64(s.Fingerprint)
	meta.u32(uint32(s.FeatureWidth))
	meta.u64(s.Seq)
	meta.i64(s.TakenAtUnixNano)
	if ver >= 3 {
		var flags uint8
		if s.Delta {
			flags |= flagDelta
		}
		if compress {
			flags |= flagCompressed
		}
		meta.u8(flags)
		meta.u64(s.BaseSeq)
		meta.u32(s.BaseCRC)
	}
	return meta.buf
}

func buildShard(s *Snapshot, i int, ver uint16, es *EncodeScratch) []byte {
	sh := &s.ShardStates[i]
	est := 64 + len(sh.Table)*288 + len(sh.Store.Flows)*224 +
		len(sh.Store.Journal)*240 + len(sh.Store.Preds)*144 +
		len(sh.Removed)*keyWireLen
	w := &writer{buf: getSectionBuf(es, est)}
	w.u32(uint32(i))

	w.u32(uint32(len(sh.Table)))
	tix := sortedIndex(es, sh.Table, func(st *flow.StateSnapshot) flow.Key { return st.Key })
	for _, ix := range tix {
		putState(w, &sh.Table[ix])
	}
	releaseSortIndex(es, tix)

	w.u32(uint32(len(sh.Store.Flows)))
	fix := sortedIndex(es, sh.Store.Flows, func(rec *store.FlowRecord) flow.Key { return rec.Key })
	for _, ix := range fix {
		putFlowRecord(w, &sh.Store.Flows[ix])
	}
	releaseSortIndex(es, fix)

	// The journal is a feed: append order is meaning, keep it.
	w.u32(uint32(len(sh.Store.Journal)))
	for i := range sh.Store.Journal {
		e := &sh.Store.Journal[i]
		w.u64(e.Seq)
		if ver >= 2 {
			w.u64(e.GSeq)
		}
		putFlowRecord(w, &e.Rec)
	}
	w.u64(sh.Store.Seq)
	if ver >= 2 {
		// The shard's prediction log: Seq order is meaning, keep it.
		w.u32(uint32(len(sh.Store.Preds)))
		for i := range sh.Store.Preds {
			putPrediction(w, &sh.Store.Preds[i], ver)
		}
	}
	if ver >= 3 {
		removed := sortedKeys(sh.Removed)
		w.u32(uint32(len(removed)))
		for _, k := range removed {
			putKey(w, k)
		}
	}
	return w.buf
}

func buildWindows(s *Snapshot, ver uint16, es *EncodeScratch) []byte {
	est := 16 + len(s.Windows)*80 + len(s.RemovedWindows)*keyWireLen
	ww := &writer{buf: getSectionBuf(es, est)}
	ww.u32(uint32(len(s.Windows)))
	wix := sortedIndex(es, s.Windows, func(win *Window) flow.Key { return win.Key })
	for _, ix := range wix {
		win := &s.Windows[ix]
		putKey(ww, win.Key)
		ww.u32(uint32(len(win.Votes)))
		for _, v := range win.Votes {
			ww.i64(int64(v))
		}
	}
	releaseSortIndex(es, wix)
	if ver >= 3 {
		removed := sortedKeys(s.RemovedWindows)
		ww.u32(uint32(len(removed)))
		for _, k := range removed {
			putKey(ww, k)
		}
	}
	return ww.buf
}

func buildPreds(s *Snapshot, ver uint16, es *EncodeScratch) []byte {
	pw := &writer{buf: getSectionBuf(es, 16+len(s.Predictions)*144)}
	pw.u32(uint32(len(s.Predictions)))
	for i := range s.Predictions {
		putPrediction(pw, &s.Predictions[i], ver)
	}
	return pw.buf
}

func sectionJobs(s *Snapshot, ver uint16, compress bool, es *EncodeScratch) []sectionJob {
	jobs := make([]sectionJob, 0, len(s.ShardStates)+3)
	jobs = append(jobs, sectionJob{secMeta, func() []byte { return buildMeta(s, ver, compress) }})
	for i := range s.ShardStates {
		i := i
		jobs = append(jobs, sectionJob{secShard, func() []byte { return buildShard(s, i, ver, es) }})
	}
	jobs = append(jobs, sectionJob{secWindows, func() []byte { return buildWindows(s, ver, es) }})
	jobs = append(jobs, sectionJob{secPredictions, func() []byte { return buildPreds(s, ver, es) }})
	return jobs
}

// deflateSection wraps a raw section payload in the compressed
// on-wire form: raw length, then the deflate stream. BestSpeed — the
// feature snapshots are mostly float64 fields where heavier levels
// buy little, and the write path competes with live ingest for CPU.
func deflateSection(raw []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(raw)/2 + 16)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(raw)))
	buf.Write(hdr[:])
	fw, _ := flate.NewWriter(&buf, flate.BestSpeed)
	fw.Write(raw)
	fw.Close()
	return buf.Bytes()
}

// inflateSection reverses deflateSection. The claimed raw length only
// seeds the buffer (capped, so a hostile header cannot drive a giant
// allocation) and is then verified against the actual inflated size.
func inflateSection(stored []byte) ([]byte, error) {
	if len(stored) < 8 {
		return nil, fmt.Errorf("checkpoint: compressed section too short (%d bytes)", len(stored))
	}
	rawLen := binary.BigEndian.Uint64(stored[:8])
	grow := rawLen
	if grow > 1<<20 {
		grow = 1 << 20
	}
	var buf bytes.Buffer
	buf.Grow(int(grow))
	fr := flate.NewReader(bytes.NewReader(stored[8:]))
	n, err := io.Copy(&buf, io.LimitReader(fr, int64(rawLen)+1))
	if cerr := fr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt compressed section: %w", err)
	}
	if uint64(n) != rawLen {
		return nil, fmt.Errorf("checkpoint: compressed section inflates to %d bytes, header claims %d", n, rawLen)
	}
	return buf.Bytes(), nil
}

// encodeParallelism bounds the section-encode worker pool: one worker
// per core up to a small cap — sections beyond that just queue, and
// each in-flight worker holds a whole section payload in memory.
func encodeParallelism() int {
	p := runtime.GOMAXPROCS(0)
	if p > 8 {
		p = 8
	}
	if p < 1 {
		p = 1
	}
	return p
}

// WriteStream encodes the snapshot at the current format version and
// streams it to w: section payloads are built (and optionally
// compressed) on a bounded pool of goroutines while completed
// sections are written in order, so peak memory is a few sections —
// not the whole file — and encode overlaps IO. Returns the bytes
// written and the CRC-32 (IEEE) of the entire stream, which is the
// value a child delta records as BaseCRC.
func WriteStream(w io.Writer, s *Snapshot, opt EncodeOptions) (int64, uint32, error) {
	return writeStream(w, s, Version, opt)
}

func writeStream(w io.Writer, s *Snapshot, ver uint16, opt EncodeOptions) (int64, uint32, error) {
	compress := opt.Compress && ver >= 3
	es := opt.Scratch
	jobs := sectionJobs(s, ver, compress, es)

	results := make([]chan []byte, len(jobs))
	sem := make(chan struct{}, encodeParallelism())
	for i := range jobs {
		results[i] = make(chan []byte, 1)
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			payload := jobs[i].build()
			if compress && jobs[i].id != secMeta {
				raw := payload
				payload = deflateSection(raw)
				putSectionBuf(es, raw)
			}
			results[i] <- payload
		}(i)
	}

	crc := crc32.NewIEEE()
	var written int64
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		crc.Write(b[:n])
		return err
	}

	var hdr [6]byte
	copy(hdr[:4], magic[:])
	binary.BigEndian.PutUint16(hdr[4:6], ver)
	if err := emit(hdr[:]); err != nil {
		return written, crc.Sum32(), err
	}
	var scratch [9]byte
	for i := range jobs {
		payload := <-results[i]
		scratch[0] = jobs[i].id
		binary.BigEndian.PutUint64(scratch[1:9], uint64(len(payload)))
		if err := emit(scratch[:9]); err != nil {
			return written, crc.Sum32(), err
		}
		if err := emit(payload); err != nil {
			return written, crc.Sum32(), err
		}
		var tail [4]byte
		binary.BigEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
		putSectionBuf(es, payload)
		if err := emit(tail[:]); err != nil {
			return written, crc.Sum32(), err
		}
	}
	return written, crc.Sum32(), nil
}

// Encode serializes the snapshot into the canonical wire form of the
// current version: flows, records, windows, and removal lists sorted
// by wire key, so equal snapshots encode to equal bytes regardless of
// map iteration order. Prefer WriteStream for large snapshots headed
// to disk — Encode materializes the whole file.
func Encode(s *Snapshot) []byte { return encode(s, Version) }

// EncodeV1 serializes the snapshot in the version-1 layout: journal
// entries without global stamps, per-shard prediction logs dropped in
// favour of the one global predictions section. It exists for
// rollback tooling and for the cross-version tests that pin "an old
// snapshot still restores" — new snapshots should use Encode. Callers
// wanting the version-1 view of a version-2 snapshot must fold the
// shard logs into s.Predictions themselves (see store.MergePredictions).
// Delta snapshots cannot be represented before version 3; encode only
// full snapshots here.
func EncodeV1(s *Snapshot) []byte { return encode(s, 1) }

// EncodeV2 serializes the snapshot in the version-2 layout (per-shard
// prediction logs, no delta metadata) for the cross-version tests and
// rollback tooling. Delta snapshots cannot be represented before
// version 3; encode only full snapshots here.
func EncodeV2(s *Snapshot) []byte { return encode(s, 2) }

func encode(s *Snapshot, ver uint16) []byte {
	var buf bytes.Buffer
	if _, _, err := writeStream(&buf, s, ver, EncodeOptions{}); err != nil {
		// bytes.Buffer writes cannot fail; keep the invariant loud.
		panic(err)
	}
	return buf.Bytes()
}

// Decode parses a snapshot, rejecting anything malformed: wrong
// magic, future version, CRC mismatch, truncation, unknown or
// out-of-order sections, implausible wire-supplied counts, or
// trailing bytes. A rejected file loads no state at all.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+2 {
		return nil, fmt.Errorf("checkpoint: file too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:4])
	}
	ver := binary.BigEndian.Uint16(data[4:6])
	if ver == 0 || ver > Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (this binary reads ≤ %d)", ver, Version)
	}

	snap := &Snapshot{}
	compressed := false
	off := 6
	sawMeta, sawWindows, sawPreds := false, false, false
	shardsSeen := 0
	for off < len(data) {
		if off+1+8 > len(data) {
			return nil, fmt.Errorf("checkpoint: truncated section header at offset %d", off)
		}
		id := data[off]
		plen := binary.BigEndian.Uint64(data[off+1 : off+9])
		off += 9
		if plen > uint64(len(data)-off) {
			return nil, fmt.Errorf("checkpoint: section %d truncated (claims %d bytes, %d remain)", id, plen, len(data)-off)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if off+4 > len(data) {
			return nil, fmt.Errorf("checkpoint: section %d missing CRC", id)
		}
		want := binary.BigEndian.Uint32(data[off : off+4])
		off += 4
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, fmt.Errorf("checkpoint: section %d CRC mismatch (got %08x, want %08x)", id, got, want)
		}
		if compressed && id != secMeta {
			raw, err := inflateSection(payload)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: section %d: %w", id, err)
			}
			payload = raw
		}

		r := &reader{buf: payload}
		switch id {
		case secMeta:
			if sawMeta {
				return nil, fmt.Errorf("checkpoint: duplicate meta section")
			}
			sawMeta = true
			snap.Shards = int(r.u32())
			snap.Fingerprint = r.u64()
			snap.FeatureWidth = int(r.u32())
			snap.Seq = r.u64()
			snap.TakenAtUnixNano = r.i64()
			if ver >= 3 {
				flags := r.u8()
				if r.err == nil && flags&^(flagDelta|flagCompressed) != 0 {
					return nil, fmt.Errorf("checkpoint: unknown meta flags %#x", flags)
				}
				snap.Delta = flags&flagDelta != 0
				compressed = flags&flagCompressed != 0
				snap.BaseSeq = r.u64()
				snap.BaseCRC = r.u32()
				if r.err == nil && !snap.Delta && (snap.BaseSeq != 0 || snap.BaseCRC != 0) {
					return nil, fmt.Errorf("checkpoint: full snapshot carries a parent link (base seq %d)", snap.BaseSeq)
				}
			}
			if r.err == nil && (snap.Shards < 1 || snap.Shards > 1<<20) {
				return nil, fmt.Errorf("checkpoint: implausible shard count %d", snap.Shards)
			}
			// The wire-supplied count drives the ShardState
			// preallocation below, so bound it by what the remaining
			// file could possibly hold — one minimal section per shard —
			// before trusting it (hostile-count hardening; same class as
			// the fuzz-found trace.Read preallocation bug).
			if r.err == nil && snap.Shards > (len(data)-off)/minShardSectionLen {
				return nil, fmt.Errorf("checkpoint: shard count %d exceeds remaining file (%d bytes)", snap.Shards, len(data)-off)
			}
			snap.ShardStates = make([]ShardState, snap.Shards)
		case secShard:
			if !sawMeta {
				return nil, fmt.Errorf("checkpoint: shard section before meta")
			}
			idx := int(r.u32())
			if r.err == nil && (idx != shardsSeen || idx >= snap.Shards) {
				return nil, fmt.Errorf("checkpoint: shard section %d out of order (expected %d of %d)", idx, shardsSeen, snap.Shards)
			}
			var sh ShardState
			n := r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				sh.Table = append(sh.Table, getState(r))
			}
			n = r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				sh.Store.Flows = append(sh.Store.Flows, getFlowRecord(r))
			}
			entrySize := keyWireLen + 8
			if ver >= 2 {
				entrySize += 8
			}
			n = r.count(entrySize)
			for i := 0; i < n && r.err == nil; i++ {
				e := store.JournalEntry{Seq: r.u64()}
				if ver >= 2 {
					e.GSeq = r.u64()
				}
				e.Rec = getFlowRecord(r)
				sh.Store.Journal = append(sh.Store.Journal, e)
			}
			sh.Store.Seq = r.u64()
			if ver >= 2 {
				var prevSeq uint64
				n = r.count(keyWireLen + 8)
				for i := 0; i < n && r.err == nil; i++ {
					p := getPrediction(r, ver)
					// The merge cursor's invariant: each shard's log is
					// strictly Seq-sorted. A file violating it would
					// silently scramble the reconstructed global order,
					// so reject it here like any other corruption.
					if r.err == nil && p.Seq <= prevSeq {
						return nil, fmt.Errorf("checkpoint: shard %d prediction log not Seq-sorted (%d after %d)", idx, p.Seq, prevSeq)
					}
					prevSeq = p.Seq
					sh.Store.Preds = append(sh.Store.Preds, p)
				}
			}
			if ver >= 3 {
				n = r.count(keyWireLen)
				if r.err == nil && n > 0 && !snap.Delta {
					return nil, fmt.Errorf("checkpoint: full snapshot shard %d carries %d removed keys", idx, n)
				}
				for i := 0; i < n && r.err == nil; i++ {
					sh.Removed = append(sh.Removed, getKey(r))
				}
			}
			if r.err == nil {
				snap.ShardStates[idx] = sh
				shardsSeen++
			}
		case secWindows:
			if sawWindows {
				return nil, fmt.Errorf("checkpoint: duplicate windows section")
			}
			sawWindows = true
			n := r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				win := Window{Key: getKey(r)}
				nv := r.count(8)
				for j := 0; j < nv && r.err == nil; j++ {
					win.Votes = append(win.Votes, int(r.i64()))
				}
				snap.Windows = append(snap.Windows, win)
			}
			if ver >= 3 {
				n = r.count(keyWireLen)
				if r.err == nil && n > 0 && !snap.Delta {
					return nil, fmt.Errorf("checkpoint: full snapshot carries %d removed windows", n)
				}
				for i := 0; i < n && r.err == nil; i++ {
					snap.RemovedWindows = append(snap.RemovedWindows, getKey(r))
				}
			}
		case secPredictions:
			if sawPreds {
				return nil, fmt.Errorf("checkpoint: duplicate predictions section")
			}
			sawPreds = true
			n := r.count(keyWireLen)
			for i := 0; i < n && r.err == nil; i++ {
				snap.Predictions = append(snap.Predictions, getPrediction(r, ver))
			}
		default:
			return nil, fmt.Errorf("checkpoint: unknown section id %d", id)
		}
		if r.err != nil {
			return nil, r.err
		}
		if r.off != len(payload) {
			return nil, fmt.Errorf("checkpoint: section %d has %d trailing payload bytes", id, len(payload)-r.off)
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("checkpoint: no meta section")
	}
	if shardsSeen != snap.Shards {
		return nil, fmt.Errorf("checkpoint: %d shard sections for %d shards", shardsSeen, snap.Shards)
	}
	if !sawWindows || !sawPreds {
		return nil, fmt.Errorf("checkpoint: missing windows or predictions section")
	}
	return snap, nil
}
