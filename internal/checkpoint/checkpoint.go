// Package checkpoint persists the live pipeline's durable state —
// per-shard flow tables and store shards (records, journal tails,
// sequence counters), per-flow vote windows, and the global
// prediction log — as crash-consistent snapshot files.
//
// A snapshot is written atomically: encoded into a temp file in the
// destination directory, fsync'd, renamed into place, and the
// directory fsync'd, so a crash mid-write leaves either the previous
// checkpoint or the new one, never a torn file. The on-disk format is
// versioned and every section carries a CRC; torn, truncated, or
// foreign files are rejected loudly instead of loading partial state
// (AMON-style partitioned persistence, arXiv:1509.00268, applied to
// the paper's one-database design).
//
// Since format version 3 a checkpoint can be a delta: only the
// records, windows, and log tails dirtied since a previous snapshot,
// chained to that parent file by (sequence number, whole-file CRC).
// Restore resolves the newest valid chain — base plus every delta in
// order — and replays it; a torn or missing link drops back to the
// longest intact prefix, which is itself a consistent cut. Full
// files are self-contained exactly as before.
//
// Encoding is canonical — flows, records, windows, and removal lists
// are sorted by their wire-encoded key — so snapshot→restore→snapshot
// is byte-identical, which is what the format's property tests pin.
package checkpoint

import (
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/store"
)

// Version is the current on-disk format version. Decoders reject
// anything newer: a downgraded binary must not half-read a future
// layout. Older versions decode forever — version 1 (shared global
// prediction log, no global journal stamps) restores into the current
// store with synthesized stamps.
//
// Version history:
//
//	1 — initial format: per-shard flow tables/records/journal tails,
//	    one global predictions section.
//	2 — per-shard prediction logs: each shard section carries its own
//	    Seq-stamped prediction log and each journal entry its global
//	    ingest stamp; the global predictions section is written empty.
//	3 — incremental checkpoints: the meta section carries flags
//	    (delta, compressed sections), the parent link (BaseSeq,
//	    BaseCRC), shard sections end with a removed-key list, and the
//	    windows section ends with a removed-window list. Section
//	    payloads may be flate-compressed.
const Version = 3

// Snapshot is one checkpoint: everything the live pipeline needs to
// resume where a crashed process left off — or, when Delta is set,
// everything that changed since the parent snapshot named by
// (BaseSeq, BaseCRC).
type Snapshot struct {
	// Shards is the shard count the snapshot was taken at. Restore
	// into a pipeline with a different count must fail — keys would
	// hash onto different stripes.
	Shards int
	// Fingerprint identifies the model/scaler bundle. A checkpoint
	// restored under different models would splice incomparable votes
	// into the same windows.
	Fingerprint uint64
	// FeatureWidth is the feature-vector length models were scoring.
	FeatureWidth int
	// Seq increments per checkpoint written by a process; it names the
	// file and orders candidates in Latest.
	Seq uint64
	// TakenAtUnixNano is the wall-clock write time, for operators.
	TakenAtUnixNano int64

	// Delta marks an incremental snapshot: ShardStates carry only
	// records dirtied since the parent snapshot (plus each shard's
	// full journal tail and sequence counter), Windows only dirty
	// windows, and the Removed lists name state deleted since the
	// parent. A delta restores only on top of its parent chain.
	Delta bool
	// BaseSeq is the parent snapshot's Seq; BaseCRC the CRC-32 (IEEE)
	// of the parent's entire file bytes. Restore verifies both before
	// replaying a delta — a chain through a rewritten or torn parent
	// must not splice. Zero on full snapshots.
	BaseSeq uint64
	BaseCRC uint32

	// ShardStates holds per-shard durable state, indexed by shard.
	ShardStates []ShardState
	// Windows holds the per-flow model vote windows (only the dirty
	// ones on a delta).
	Windows []Window
	// RemovedWindows names vote windows deleted since the parent
	// snapshot (delta only; restore removes them before applying
	// Windows).
	RemovedWindows []flow.Key
	// Predictions is the version-1 global prediction log in append
	// order. Version-2 snapshots persist predictions per shard in
	// ShardStates (store.ShardExport.Preds) and leave this empty; it
	// is populated only when decoding a version-1 file, and restore
	// routes it through Checkpointable.ImportPredictions.
	Predictions []store.PredictionRecord
}

// ShardState is one shard's durable state: the flow table's full
// records (including the unexported Welford and wrap-tracking terms —
// without them restored flows would diverge from their pre-crash
// feature streams) and the store shard's records, journal tail, and
// sequence counter. On a delta snapshot Table and Store.Flows hold
// only records dirtied since the parent, Store.Journal is the shard's
// complete current tail (it replaces the restored tail — entries
// polled since the parent must not reappear), and Removed names the
// flows evicted since the parent.
type ShardState struct {
	Table   []flow.StateSnapshot
	Store   store.ShardExport
	Removed []flow.Key
}

// Window is one flow's ensemble vote window.
type Window struct {
	Key   flow.Key
	Votes []int
}
