// Package checkpoint persists the live pipeline's durable state —
// per-shard flow tables and store shards (records, journal tails,
// sequence counters), per-flow vote windows, and the global
// prediction log — as crash-consistent snapshot files.
//
// A snapshot is written atomically: encoded into a temp file in the
// destination directory, fsync'd, renamed into place, and the
// directory fsync'd, so a crash mid-write leaves either the previous
// checkpoint or the new one, never a torn file. The on-disk format is
// versioned and every section carries a CRC; torn, truncated, or
// foreign files are rejected loudly instead of loading partial state
// (AMON-style partitioned persistence, arXiv:1509.00268, applied to
// the paper's one-database design).
//
// Encoding is canonical — flows, records, and windows are sorted by
// their wire-encoded key — so snapshot→restore→snapshot is
// byte-identical, which is what the format's property tests pin.
package checkpoint

import (
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/store"
)

// Version is the current on-disk format version. Decoders reject
// anything newer: a downgraded binary must not half-read a future
// layout. Older versions decode forever — version 1 (shared global
// prediction log, no global journal stamps) restores into the current
// store with synthesized stamps.
//
// Version history:
//
//	1 — initial format: per-shard flow tables/records/journal tails,
//	    one global predictions section.
//	2 — per-shard prediction logs: each shard section carries its own
//	    Seq-stamped prediction log and each journal entry its global
//	    ingest stamp; the global predictions section is written empty.
const Version = 2

// Snapshot is one checkpoint: everything the live pipeline needs to
// resume where a crashed process left off.
type Snapshot struct {
	// Shards is the shard count the snapshot was taken at. Restore
	// into a pipeline with a different count must fail — keys would
	// hash onto different stripes.
	Shards int
	// Fingerprint identifies the model/scaler bundle. A checkpoint
	// restored under different models would splice incomparable votes
	// into the same windows.
	Fingerprint uint64
	// FeatureWidth is the feature-vector length models were scoring.
	FeatureWidth int
	// Seq increments per checkpoint written by a process; it names the
	// file and orders candidates in Latest.
	Seq uint64
	// TakenAtUnixNano is the wall-clock write time, for operators.
	TakenAtUnixNano int64

	// ShardStates holds per-shard durable state, indexed by shard.
	ShardStates []ShardState
	// Windows holds the per-flow model vote windows.
	Windows []Window
	// Predictions is the version-1 global prediction log in append
	// order. Version-2 snapshots persist predictions per shard in
	// ShardStates (store.ShardExport.Preds) and leave this empty; it
	// is populated only when decoding a version-1 file, and restore
	// routes it through Checkpointable.ImportPredictions.
	Predictions []store.PredictionRecord
}

// ShardState is one shard's durable state: the flow table's full
// records (including the unexported Welford and wrap-tracking terms —
// without them restored flows would diverge from their pre-crash
// feature streams) and the store shard's records, journal tail, and
// sequence counter.
type ShardState struct {
	Table []flow.StateSnapshot
	Store store.ShardExport
}

// Window is one flow's ensemble vote window.
type Window struct {
	Key   flow.Key
	Votes []int
}
