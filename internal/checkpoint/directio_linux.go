//go:build linux

package checkpoint

import (
	"os"
	"syscall"
	"unsafe"
)

// Direct-IO temp-file writer. A checkpoint is written once,
// sequentially, then read back only on restore — the page cache buys
// nothing, and on hosts with dirty-page writeback throttling (cgroup
// IO limits, small dirty ratios against a large write) a buffered
// 440 MB stream plus fsync can crawl at ~1/30th of what the device
// sustains. O_DIRECT bypasses the cache entirely: data goes to the
// device as it is written, and the trailing fsync only has metadata
// left to flush.
//
// O_DIRECT requires the memory buffer, file offset, and write length
// to be aligned to the logical block size. The writer streams through
// a small ring of page-aligned buffers: the encoder fills one while a
// dedicated goroutine writes completed ones, so the blocking write
// syscall overlaps section encoding instead of serializing with it —
// on a single-core host that overlap is the difference between
// max(encode, IO) and encode+IO. The final partial block is
// zero-padded to the alignment, written, and the file then truncated
// back to the true length (truncate is a metadata op — no O_DIRECT
// constraints). Buffers are sized so each write syscall is long
// enough (milliseconds) that the runtime reliably retakes the P from
// the blocked writer thread and the encoder makes progress under it.

const (
	directAlign   = 4096    // covers 512 B and 4 KB logical block sizes
	directBufSize = 4 << 20 // one write syscall per buffer
	directBufs    = 4       // ring depth: filled + in-flight + spares
)

type directFile struct {
	f   *os.File
	cur []byte // buffer being filled, always directBufSize long
	n   int    // bytes filled in cur

	free chan []byte // empty buffers, recycled by the writer goroutine
	work chan []byte // filled buffers (len = bytes to write), in order
	done chan struct{}
	werr error // first write error; read only after done is closed
}

// alignedBuf carves a directAlign-aligned window of size bytes out of
// a fresh allocation.
func alignedBuf(size int) []byte {
	raw := make([]byte, size+directAlign)
	shift := 0
	if rem := uintptr(unsafe.Pointer(unsafe.SliceData(raw))) % directAlign; rem != 0 {
		shift = directAlign - int(rem)
	}
	return raw[shift : shift+size : shift+size]
}

// openDirect reopens the already-created temp file for writing with
// O_DIRECT. Filesystems without direct-IO support fail here (EINVAL),
// and the caller falls back to the buffered path.
func openDirect(name string) (*directFile, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|syscall.O_DIRECT, 0o600)
	if err != nil {
		return nil, err
	}
	d := &directFile{
		f:    f,
		free: make(chan []byte, directBufs),
		work: make(chan []byte, directBufs),
		done: make(chan struct{}),
	}
	for i := 0; i < directBufs; i++ {
		d.free <- alignedBuf(directBufSize)
	}
	d.cur = <-d.free
	go d.writer()
	return d, nil
}

// writer drains filled buffers to the file in order. It never stops
// early: after the first error it keeps consuming (skipping the
// syscall) so producers cannot block on a full channel; the latched
// error surfaces in finish. The close of done publishes werr.
func (d *directFile) writer() {
	defer close(d.done)
	for b := range d.work {
		if d.werr == nil {
			if _, err := d.f.Write(b); err != nil {
				d.werr = err
			}
		}
		d.free <- b[:directBufSize]
	}
}

func (d *directFile) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		c := copy(d.cur[d.n:], p)
		d.n += c
		p = p[c:]
		total += c
		if d.n == len(d.cur) {
			d.work <- d.cur
			d.cur = <-d.free
			d.n = 0
		}
	}
	return total, nil
}

// finish flushes the buffered tail (zero-padded to the alignment),
// waits for the writer goroutine, truncates the file to the true
// stream length, and fsyncs.
func (d *directFile) finish(total int64) error {
	if d.n > 0 {
		pad := (d.n + directAlign - 1) &^ (directAlign - 1)
		for i := d.n; i < pad; i++ {
			d.cur[i] = 0
		}
		d.work <- d.cur[:pad]
		d.n = 0
	}
	d.cur = nil // marks work as closed for close()
	close(d.work)
	<-d.done
	if d.werr != nil {
		return d.werr
	}
	if err := d.f.Truncate(total); err != nil {
		return err
	}
	return d.f.Sync()
}

// close tears the writer down on the error path without flushing;
// safe after finish (the channel is already closed then).
func (d *directFile) close() error {
	if d.cur != nil {
		close(d.work)
		<-d.done
		d.cur = nil
	}
	return d.f.Close()
}

// writeTempContents streams snap into the temp file created as tmp
// (named tmpName), preferring direct IO and falling back to the
// portable buffered writer when the filesystem rejects O_DIRECT.
// Takes ownership of tmp either way.
func writeTempContents(tmp *os.File, tmpName string, snap *Snapshot, opt EncodeOptions) (int64, uint32, error) {
	df, derr := openDirect(tmpName)
	if derr != nil {
		return writeTempBuffered(tmp, snap, opt)
	}
	tmp.Close() // the direct fd replaces it
	n, crc, err := WriteStream(df, snap, opt)
	if err == nil {
		err = df.finish(n)
	}
	if cerr := df.close(); err == nil {
		err = cerr
	}
	return n, crc, err
}
