package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// maxChainLen bounds how many delta files a restore will walk before
// declaring the chain corrupt — a cycle or a forged BaseSeq ladder
// must not turn restore into an unbounded file walk.
const maxChainLen = 4096

// FileName returns the canonical file name for a checkpoint sequence
// number. Zero-padded so lexical order is sequence order. Full and
// delta snapshots share the naming scheme: which one a file is lives
// in its meta section, not its name.
func FileName(seq uint64) string {
	return fmt.Sprintf("ckpt-%016d.amck", seq)
}

// Write encodes snap and writes it to path atomically. Kept for
// callers that don't need the stream CRC; see WriteOpts.
func Write(path string, snap *Snapshot) (int, error) {
	n, _, err := WriteOpts(path, snap, EncodeOptions{})
	return n, err
}

// WriteOpts encodes snap (optionally with compressed sections) and
// writes it to path atomically: streamed into a temp file in the same
// directory — never materializing the whole encoding in memory — then
// fsync, rename, directory fsync. A crash at any point leaves either
// no file or a complete one. On Linux the stream goes through
// O_DIRECT when the filesystem supports it (see writeTempContents):
// checkpoints are written once and read only on restore, so routing
// hundreds of MB through the page cache buys nothing and dirty-page
// writeback throttling can cap a buffered fsync at a tiny fraction of
// what the device sustains. Returns the encoded size and the
// whole-file CRC, which a subsequent delta records as its BaseCRC.
func WriteOpts(path string, snap *Snapshot, opt EncodeOptions) (int, uint32, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	n, crc, err := writeTempContents(tmp, tmpName, snap, opt)
	if err != nil {
		os.Remove(tmpName)
		return 0, 0, fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, 0, fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Sync the directory so the rename itself is durable; best
		// effort on filesystems that reject directory fsync.
		d.Sync()
		d.Close()
	}
	return int(n), crc, nil
}

// writeTempBuffered is the portable temp-file writer: a 1 MB buffered
// stream, flush, fsync, close. Takes ownership of tmp.
func writeTempBuffered(tmp *os.File, snap *Snapshot, opt EncodeOptions) (int64, uint32, error) {
	bw := bufio.NewWriterSize(tmp, 1<<20)
	n, crc, err := WriteStream(bw, snap, opt)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	return n, crc, err
}

// WriteDir writes snap into dir (created if absent) under its
// canonical sequence-numbered name and returns the path and encoded
// size.
func WriteDir(dir string, snap *Snapshot) (string, int, error) {
	path, n, _, err := WriteDirOpts(dir, snap, EncodeOptions{})
	return path, n, err
}

// WriteDirOpts is WriteDir with encoding options, also returning the
// whole-file CRC for delta chaining.
func WriteDirOpts(dir string, snap *Snapshot, opt EncodeOptions) (string, int, uint32, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, 0, fmt.Errorf("checkpoint: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, FileName(snap.Seq))
	n, crc, err := WriteOpts(path, snap, opt)
	return path, n, crc, err
}

// Load reads and decodes one checkpoint file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return snap, nil
}

// Latest loads the newest valid checkpoint file in dir, skipping
// files that fail to decode (a torn write that predates atomic
// renames, a foreign file) and falling back to the next-newest. The
// returned snapshot may be a delta — callers restoring state should
// use LatestChain, which resolves the whole base-plus-deltas chain;
// Latest remains the single-file view (inspection, tests, retention).
// ok is false when dir holds no valid checkpoint (including when dir
// does not exist — a first boot).
func Latest(dir string) (snap *Snapshot, path string, ok bool, err error) {
	names, err := candidates(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", false, nil
		}
		return nil, "", false, err
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		p := filepath.Join(dir, names[i])
		s, err := Load(p)
		if err != nil {
			lastErr = err
			continue
		}
		return s, p, true, nil
	}
	if lastErr != nil {
		return nil, "", false, fmt.Errorf("checkpoint: no valid checkpoint in %s (newest failure: %w)", dir, lastErr)
	}
	return nil, "", false, nil
}

// LatestChain resolves the newest restorable state in dir: the newest
// valid snapshot plus — when it is a delta — every ancestor back to
// its full base, each parent verified by the (BaseSeq, BaseCRC) link
// its child recorded. The chain is returned base-first, ready to
// replay in order. A candidate whose chain is broken (torn file,
// missing parent, CRC mismatch — a crash mid-delta-chain) is skipped
// and the next-newest candidate tried, so restore falls back to the
// longest intact prefix of history. ok is false when dir holds no
// restorable chain at all.
func LatestChain(dir string) (chain []*Snapshot, paths []string, ok bool, err error) {
	names, err := candidates(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, false, nil
		}
		return nil, nil, false, err
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		chain, paths, err := loadChain(dir, names[i])
		if err != nil {
			lastErr = err
			continue
		}
		return chain, paths, true, nil
	}
	if lastErr != nil {
		return nil, nil, false, fmt.Errorf("checkpoint: no restorable chain in %s (newest failure: %w)", dir, lastErr)
	}
	return nil, nil, false, nil
}

// loadChain loads the snapshot in name and walks its parent links
// back to a full base, verifying each (seq, CRC) link. Returned
// base-first.
func loadChain(dir, name string) ([]*Snapshot, []string, error) {
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	chain := []*Snapshot{snap}
	paths := []string{path}
	for chain[0].Delta {
		if len(chain) >= maxChainLen {
			return nil, nil, fmt.Errorf("checkpoint: %s: delta chain longer than %d files", path, maxChainLen)
		}
		child := chain[0]
		if child.BaseSeq >= child.Seq {
			return nil, nil, fmt.Errorf("checkpoint: %s: delta seq %d chains to non-older base %d", paths[0], child.Seq, child.BaseSeq)
		}
		ppath := filepath.Join(dir, FileName(child.BaseSeq))
		pdata, err := os.ReadFile(ppath)
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint: %s: missing chain parent: %w", paths[0], err)
		}
		if got := crc32.ChecksumIEEE(pdata); got != child.BaseCRC {
			return nil, nil, fmt.Errorf("checkpoint: %s: chain parent %s CRC %08x, child expects %08x",
				paths[0], ppath, got, child.BaseCRC)
		}
		parent, err := Decode(pdata)
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint: %s: %w", ppath, err)
		}
		if parent.Seq != child.BaseSeq {
			return nil, nil, fmt.Errorf("checkpoint: %s: parent carries seq %d, child chains to %d", ppath, parent.Seq, child.BaseSeq)
		}
		chain = append([]*Snapshot{parent}, chain...)
		paths = append([]string{ppath}, paths...)
	}
	return chain, paths, nil
}

// Meta is the cheaply-readable identity of a checkpoint file: its
// format version, sequence number, and — for deltas — the parent
// link. ReadMeta parses only the meta section, so retention can walk
// chains without decoding gigabytes of payload.
type Meta struct {
	Version uint16
	Seq     uint64
	Delta   bool
	BaseSeq uint64
	BaseCRC uint32
}

// ReadMeta reads and validates just the header and meta section of a
// checkpoint file.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	defer f.Close()
	var hdr [15]byte // magic, version, section id, payload length
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return Meta{}, fmt.Errorf("checkpoint: %s: short meta header: %w", path, err)
	}
	if string(hdr[:4]) != string(magic[:]) {
		return Meta{}, fmt.Errorf("checkpoint: %s: bad magic %q", path, hdr[:4])
	}
	m := Meta{Version: binary.BigEndian.Uint16(hdr[4:6])}
	if m.Version == 0 || m.Version > Version {
		return Meta{}, fmt.Errorf("checkpoint: %s: unsupported format version %d", path, m.Version)
	}
	if hdr[6] != secMeta {
		return Meta{}, fmt.Errorf("checkpoint: %s: first section is %d, not meta", path, hdr[6])
	}
	plen := binary.BigEndian.Uint64(hdr[7:15])
	if plen > 1<<10 {
		return Meta{}, fmt.Errorf("checkpoint: %s: implausible meta section size %d", path, plen)
	}
	payload := make([]byte, plen+4)
	if _, err := io.ReadFull(f, payload); err != nil {
		return Meta{}, fmt.Errorf("checkpoint: %s: short meta section: %w", path, err)
	}
	body, want := payload[:plen], binary.BigEndian.Uint32(payload[plen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return Meta{}, fmt.Errorf("checkpoint: %s: meta CRC mismatch (got %08x, want %08x)", path, got, want)
	}
	r := &reader{buf: body}
	r.u32() // shards
	r.u64() // fingerprint
	r.u32() // feature width
	m.Seq = r.u64()
	r.i64() // taken-at
	if m.Version >= 3 {
		flags := r.u8()
		m.Delta = flags&flagDelta != 0
		m.BaseSeq = r.u64()
		m.BaseCRC = r.u32()
	}
	if r.err != nil {
		return Meta{}, fmt.Errorf("checkpoint: %s: %w", path, r.err)
	}
	return m, nil
}

// Prune removes old checkpoint files from dir, keeping the newest
// keep files plus every chain ancestor a kept delta still needs —
// deleting a delta's base would orphan the delta, so retention
// follows parent links (meta-section reads only) before deleting
// anything. Files whose meta cannot be read are treated as
// chain-less: they are kept or removed purely by age, exactly like a
// torn file restore would skip.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	names, err := candidates(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if len(names) <= keep {
		return nil
	}
	keepSet := make(map[string]bool, keep)
	for _, name := range names[len(names)-keep:] {
		keepSet[name] = true
	}
	// Walk each kept file's chain and retain the ancestors it needs.
	for _, name := range names[len(names)-keep:] {
		cur := name
		for hops := 0; hops < maxChainLen; hops++ {
			m, err := ReadMeta(filepath.Join(dir, cur))
			if err != nil || !m.Delta {
				break
			}
			parent := FileName(m.BaseSeq)
			if keepSet[parent] {
				break
			}
			keepSet[parent] = true
			cur = parent
		}
	}
	for _, name := range names {
		if keepSet[name] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("checkpoint: prune %s: %w", name, err)
		}
	}
	return nil
}

// candidates lists checkpoint file names in dir in ascending sequence
// order (the zero-padded names make lexical order sequence order).
func candidates(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".amck") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
