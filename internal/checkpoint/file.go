package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileName returns the canonical file name for a checkpoint sequence
// number. Zero-padded so lexical order is sequence order.
func FileName(seq uint64) string {
	return fmt.Sprintf("ckpt-%016d.amck", seq)
}

// Write encodes snap and writes it to path atomically: temp file in
// the same directory, fsync, rename, directory fsync. A crash at any
// point leaves either no file or a complete one. Returns the encoded
// size.
func Write(path string, snap *Snapshot) (int, error) {
	data := Encode(snap)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return 0, fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return 0, fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return 0, fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return 0, fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Sync the directory so the rename itself is durable; best
		// effort on filesystems that reject directory fsync.
		d.Sync()
		d.Close()
	}
	return len(data), nil
}

// WriteDir writes snap into dir (created if absent) under its
// canonical sequence-numbered name and returns the path and encoded
// size.
func WriteDir(dir string, snap *Snapshot) (string, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("checkpoint: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, FileName(snap.Seq))
	n, err := Write(path, snap)
	return path, n, err
}

// Load reads and decodes one checkpoint file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return snap, nil
}

// Latest loads the newest valid checkpoint in dir, skipping files
// that fail to decode (a torn write that predates atomic renames, a
// foreign file) and falling back to the next-newest. It returns the
// snapshot and its path; ok is false when dir holds no valid
// checkpoint (including when dir does not exist — a first boot).
func Latest(dir string) (snap *Snapshot, path string, ok bool, err error) {
	names, err := candidates(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", false, nil
		}
		return nil, "", false, err
	}
	var lastErr error
	for i := len(names) - 1; i >= 0; i-- {
		p := filepath.Join(dir, names[i])
		s, err := Load(p)
		if err != nil {
			lastErr = err
			continue
		}
		return s, p, true, nil
	}
	if lastErr != nil {
		return nil, "", false, fmt.Errorf("checkpoint: no valid checkpoint in %s (newest failure: %w)", dir, lastErr)
	}
	return nil, "", false, nil
}

// Prune removes all but the newest keep checkpoint files in dir.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	names, err := candidates(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if len(names) <= keep {
		return nil
	}
	for _, name := range names[:len(names)-keep] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("checkpoint: prune %s: %w", name, err)
		}
	}
	return nil
}

// candidates lists checkpoint file names in dir in ascending sequence
// order (the zero-padded names make lexical order sequence order).
func candidates(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".amck") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
