package checkpoint

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
)

// randSnapshot builds a populated snapshot from a seeded source so
// the property tests are deterministic per seed.
func randSnapshot(seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	randKey := func() flow.Key {
		if rng.Intn(4) == 0 {
			var a, b [16]byte
			rng.Read(a[:])
			rng.Read(b[:])
			return flow.Key{
				Src: netip.AddrFrom16(a), Dst: netip.AddrFrom16(b),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: netsim.Proto(rng.Intn(256)),
			}
		}
		var a, b [4]byte
		rng.Read(a[:])
		rng.Read(b[:])
		return flow.Key{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: netsim.Proto(rng.Intn(256)),
		}
	}
	randStats := func() flow.StatsSnapshot {
		return flow.StatsSnapshot{
			N: rng.Intn(1000), Last: rng.NormFloat64(), Sum: rng.NormFloat64() * 1e6,
			Mean: rng.NormFloat64(), M2: rng.ExpFloat64(),
		}
	}
	attack := []string{"", "synflood", "udpflood", "tcpscan"}
	randRec := func() store.FlowRecord {
		feats := make([]float64, rng.Intn(16))
		for i := range feats {
			feats[i] = rng.NormFloat64()
		}
		return store.FlowRecord{
			Key: randKey(), Features: feats,
			RegisteredAt: netsim.Time(rng.Int63()), UpdatedAt: netsim.Time(rng.Int63()),
			Updates: rng.Intn(1e6), Version: rng.Uint64(),
			Truth: rng.Intn(2) == 0, AttackType: attack[rng.Intn(len(attack))],
		}
	}

	shards := 1 + rng.Intn(4)
	snap := &Snapshot{
		Shards:          shards,
		Fingerprint:     rng.Uint64(),
		FeatureWidth:    rng.Intn(32),
		Seq:             rng.Uint64(),
		TakenAtUnixNano: rng.Int63(),
		ShardStates:     make([]ShardState, shards),
	}
	for i := range snap.ShardStates {
		sh := &snap.ShardStates[i]
		for n := rng.Intn(20); n > 0; n-- {
			sh.Table = append(sh.Table, flow.StateSnapshot{
				Key: randKey(), RegisteredAt: netsim.Time(rng.Int63()), LastAt: netsim.Time(rng.Int63()),
				Updates: rng.Intn(1e6), Size: randStats(), IAT: randStats(), Queue: randStats(), HopLat: randStats(),
				LastIngress: netsim.Timestamp32(rng.Uint32()), HaveIngress: rng.Intn(2) == 0,
				HasTelemetry: rng.Intn(2) == 0, AttackObs: rng.Intn(1000),
				LastTruth: rng.Intn(2) == 0, AttackType: attack[rng.Intn(len(attack))],
			})
		}
		for n := rng.Intn(20); n > 0; n-- {
			sh.Store.Flows = append(sh.Store.Flows, randRec())
		}
		for n := rng.Intn(10); n > 0; n-- {
			sh.Store.Journal = append(sh.Store.Journal, store.JournalEntry{Seq: rng.Uint64(), Rec: randRec()})
		}
		sh.Store.Seq = rng.Uint64()
	}
	for n := rng.Intn(15); n > 0; n-- {
		votes := make([]int, rng.Intn(8))
		for i := range votes {
			votes[i] = rng.Intn(2)
		}
		snap.Windows = append(snap.Windows, Window{Key: randKey(), Votes: votes})
	}
	for n := rng.Intn(25); n > 0; n-- {
		votes := make([]int, 1+rng.Intn(5))
		for i := range votes {
			votes[i] = rng.Intn(2)
		}
		snap.Predictions = append(snap.Predictions, store.PredictionRecord{
			Key: randKey(), Label: rng.Intn(2), At: netsim.Time(rng.Int63()),
			Latency: netsim.Time(rng.Int63()), Votes: votes,
			Truth: rng.Intn(2) == 0, AttackType: attack[rng.Intn(len(attack))],
		})
	}
	return snap
}

// TestRoundTripByteIdentical is the format's core property:
// snapshot → encode → decode → encode produces identical bytes, and
// the decoded snapshot carries identical content.
func TestRoundTripByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		snap := randSnapshot(seed)
		enc1 := Encode(snap)
		dec, err := Decode(enc1)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		enc2 := Encode(dec)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("seed %d: re-encode not byte-identical (%d vs %d bytes)", seed, len(enc1), len(enc2))
		}
		// Content survives, modulo the canonical sort Encode applies.
		dec2, err := Decode(enc2)
		if err != nil {
			t.Fatalf("seed %d: second decode: %v", seed, err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("seed %d: content diverged across round-trips", seed)
		}
		if dec.Shards != snap.Shards || dec.Fingerprint != snap.Fingerprint ||
			dec.Seq != snap.Seq || dec.FeatureWidth != snap.FeatureWidth ||
			len(dec.Predictions) != len(snap.Predictions) ||
			len(dec.Windows) != len(snap.Windows) {
			t.Fatalf("seed %d: header/content lost", seed)
		}
		// Predictions keep append order verbatim.
		if !reflect.DeepEqual(normalizePreds(dec.Predictions), normalizePreds(snap.Predictions)) {
			t.Fatalf("seed %d: prediction log reordered or altered", seed)
		}
	}
}

// normalizePreds maps nil and empty vote slices to a comparable form
// (the wire format cannot distinguish them).
func normalizePreds(ps []store.PredictionRecord) []store.PredictionRecord {
	out := append([]store.PredictionRecord(nil), ps...)
	for i := range out {
		if len(out[i].Votes) == 0 {
			out[i].Votes = nil
		}
	}
	return out
}

// TestDecodeRejectsCorruption flips, truncates, and forges bytes and
// demands a loud error every time — never a partial load.
func TestDecodeRejectsCorruption(t *testing.T) {
	snap := randSnapshot(7)
	enc := Encode(snap)

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] = 'X'
		if _, err := Decode(bad); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		binary.BigEndian.PutUint16(bad[4:6], Version+1)
		if _, err := Decode(bad); err == nil {
			t.Fatal("accepted a future format version")
		}
	})
	t.Run("bad CRC", func(t *testing.T) {
		// Flip one payload byte in every section region; CRC must
		// catch each.
		for off := 16; off < len(enc); off += 97 {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0xFF
			if _, err := Decode(bad); err == nil {
				t.Fatalf("accepted a flipped byte at offset %d", off)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(enc)-1; n += 13 {
			if _, err := Decode(enc[:n]); err == nil {
				t.Fatalf("accepted truncation to %d of %d bytes", n, len(enc))
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), enc...), 0xAB)); err == nil {
			t.Fatal("accepted trailing bytes")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); err == nil {
			t.Fatal("accepted empty input")
		}
	})
}

func TestWriteLatestPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")

	// Latest on a missing dir is a clean first-boot miss.
	if _, _, ok, err := Latest(dir); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}

	var wrote []*Snapshot
	for seq := uint64(1); seq <= 4; seq++ {
		snap := randSnapshot(int64(seq))
		snap.Seq = seq
		path, n, err := WriteDir(dir, snap)
		if err != nil || n == 0 {
			t.Fatalf("write seq %d: n=%d err=%v", seq, n, err)
		}
		if filepath.Base(path) != FileName(seq) {
			t.Fatalf("wrote %s, want %s", path, FileName(seq))
		}
		wrote = append(wrote, snap)
	}

	got, path, ok, err := Latest(dir)
	if !ok || err != nil {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if got.Seq != 4 || filepath.Base(path) != FileName(4) {
		t.Fatalf("latest picked seq %d (%s), want 4", got.Seq, path)
	}
	if !bytes.Equal(Encode(got), Encode(wrote[3])) {
		t.Fatal("loaded snapshot differs from written")
	}

	// Corrupt the newest: Latest must fall back to seq 3.
	if err := os.WriteFile(filepath.Join(dir, FileName(4)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, ok, err = Latest(dir)
	if !ok || err != nil || got.Seq != 3 {
		t.Fatalf("fallback: ok=%v err=%v seq=%v", ok, err, got)
	}

	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range names {
		left = append(left, e.Name())
	}
	if len(left) != 2 || left[0] != FileName(3) || left[1] != FileName(4) {
		t.Fatalf("prune left %v", left)
	}

	// Every file corrupt → explicit error, not a silent empty start.
	baddir := t.TempDir()
	os.WriteFile(filepath.Join(baddir, FileName(1)), []byte("nope"), 0o644)
	if _, _, ok, err := Latest(baddir); ok || err == nil {
		t.Fatalf("all-corrupt dir: ok=%v err=%v", ok, err)
	}
}
