package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
)

// randSnapshot builds a populated snapshot from a seeded source so
// the property tests are deterministic per seed.
func randSnapshot(seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	randKey := func() flow.Key {
		if rng.Intn(4) == 0 {
			var a, b [16]byte
			rng.Read(a[:])
			rng.Read(b[:])
			return flow.Key{
				Src: netip.AddrFrom16(a), Dst: netip.AddrFrom16(b),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				Proto: netsim.Proto(rng.Intn(256)),
			}
		}
		var a, b [4]byte
		rng.Read(a[:])
		rng.Read(b[:])
		return flow.Key{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: netsim.Proto(rng.Intn(256)),
		}
	}
	randStats := func() flow.StatsSnapshot {
		return flow.StatsSnapshot{
			N: rng.Intn(1000), Last: rng.NormFloat64(), Sum: rng.NormFloat64() * 1e6,
			Mean: rng.NormFloat64(), M2: rng.ExpFloat64(),
		}
	}
	attack := []string{"", "synflood", "udpflood", "tcpscan"}
	randRec := func() store.FlowRecord {
		feats := make([]float64, rng.Intn(16))
		for i := range feats {
			feats[i] = rng.NormFloat64()
		}
		return store.FlowRecord{
			Key: randKey(), Features: feats,
			RegisteredAt: netsim.Time(rng.Int63()), UpdatedAt: netsim.Time(rng.Int63()),
			Updates: rng.Intn(1e6), Version: rng.Uint64(),
			Truth: rng.Intn(2) == 0, AttackType: attack[rng.Intn(len(attack))],
		}
	}

	shards := 1 + rng.Intn(4)
	snap := &Snapshot{
		Shards:          shards,
		Fingerprint:     rng.Uint64(),
		FeatureWidth:    rng.Intn(32),
		Seq:             rng.Uint64(),
		TakenAtUnixNano: rng.Int63(),
		ShardStates:     make([]ShardState, shards),
	}
	for i := range snap.ShardStates {
		sh := &snap.ShardStates[i]
		for n := rng.Intn(20); n > 0; n-- {
			sh.Table = append(sh.Table, flow.StateSnapshot{
				Key: randKey(), RegisteredAt: netsim.Time(rng.Int63()), LastAt: netsim.Time(rng.Int63()),
				Updates: rng.Intn(1e6), Size: randStats(), IAT: randStats(), Queue: randStats(), HopLat: randStats(),
				LastIngress: netsim.Timestamp32(rng.Uint32()), HaveIngress: rng.Intn(2) == 0,
				HasTelemetry: rng.Intn(2) == 0, AttackObs: rng.Intn(1000),
				LastTruth: rng.Intn(2) == 0, AttackType: attack[rng.Intn(len(attack))],
			})
		}
		for n := rng.Intn(20); n > 0; n-- {
			sh.Store.Flows = append(sh.Store.Flows, randRec())
		}
		for n := rng.Intn(10); n > 0; n-- {
			sh.Store.Journal = append(sh.Store.Journal, store.JournalEntry{Seq: rng.Uint64(), Rec: randRec()})
		}
		sh.Store.Seq = rng.Uint64()
	}
	for n := rng.Intn(15); n > 0; n-- {
		votes := make([]int, rng.Intn(8))
		for i := range votes {
			votes[i] = rng.Intn(2)
		}
		snap.Windows = append(snap.Windows, Window{Key: randKey(), Votes: votes})
	}
	for n := rng.Intn(25); n > 0; n-- {
		votes := make([]int, 1+rng.Intn(5))
		for i := range votes {
			votes[i] = rng.Intn(2)
		}
		snap.Predictions = append(snap.Predictions, store.PredictionRecord{
			Key: randKey(), Label: rng.Intn(2), At: netsim.Time(rng.Int63()),
			Latency: netsim.Time(rng.Int63()), Votes: votes,
			Truth: rng.Intn(2) == 0, AttackType: attack[rng.Intn(len(attack))],
		})
	}
	return snap
}

// TestRoundTripByteIdentical is the format's core property:
// snapshot → encode → decode → encode produces identical bytes, and
// the decoded snapshot carries identical content.
func TestRoundTripByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		snap := randSnapshot(seed)
		enc1 := Encode(snap)
		dec, err := Decode(enc1)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		enc2 := Encode(dec)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("seed %d: re-encode not byte-identical (%d vs %d bytes)", seed, len(enc1), len(enc2))
		}
		// Content survives, modulo the canonical sort Encode applies.
		dec2, err := Decode(enc2)
		if err != nil {
			t.Fatalf("seed %d: second decode: %v", seed, err)
		}
		if !reflect.DeepEqual(dec, dec2) {
			t.Fatalf("seed %d: content diverged across round-trips", seed)
		}
		if dec.Shards != snap.Shards || dec.Fingerprint != snap.Fingerprint ||
			dec.Seq != snap.Seq || dec.FeatureWidth != snap.FeatureWidth ||
			len(dec.Predictions) != len(snap.Predictions) ||
			len(dec.Windows) != len(snap.Windows) {
			t.Fatalf("seed %d: header/content lost", seed)
		}
		// Predictions keep append order verbatim.
		if !reflect.DeepEqual(normalizePreds(dec.Predictions), normalizePreds(snap.Predictions)) {
			t.Fatalf("seed %d: prediction log reordered or altered", seed)
		}
	}
}

// normalizePreds maps nil and empty vote slices to a comparable form
// (the wire format cannot distinguish them).
func normalizePreds(ps []store.PredictionRecord) []store.PredictionRecord {
	out := append([]store.PredictionRecord(nil), ps...)
	for i := range out {
		if len(out[i].Votes) == 0 {
			out[i].Votes = nil
		}
	}
	return out
}

// TestDecodeRejectsCorruption flips, truncates, and forges bytes and
// demands a loud error every time — never a partial load.
func TestDecodeRejectsCorruption(t *testing.T) {
	snap := randSnapshot(7)
	enc := Encode(snap)

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		bad[0] = 'X'
		if _, err := Decode(bad); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), enc...)
		binary.BigEndian.PutUint16(bad[4:6], Version+1)
		if _, err := Decode(bad); err == nil {
			t.Fatal("accepted a future format version")
		}
	})
	t.Run("bad CRC", func(t *testing.T) {
		// Flip one payload byte in every section region; CRC must
		// catch each.
		for off := 16; off < len(enc); off += 97 {
			bad := append([]byte(nil), enc...)
			bad[off] ^= 0xFF
			if _, err := Decode(bad); err == nil {
				t.Fatalf("accepted a flipped byte at offset %d", off)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(enc)-1; n += 13 {
			if _, err := Decode(enc[:n]); err == nil {
				t.Fatalf("accepted truncation to %d of %d bytes", n, len(enc))
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), enc...), 0xAB)); err == nil {
			t.Fatal("accepted trailing bytes")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); err == nil {
			t.Fatal("accepted empty input")
		}
	})
}

func TestWriteLatestPrune(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")

	// Latest on a missing dir is a clean first-boot miss.
	if _, _, ok, err := Latest(dir); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}

	var wrote []*Snapshot
	for seq := uint64(1); seq <= 4; seq++ {
		snap := randSnapshot(int64(seq))
		snap.Seq = seq
		path, n, err := WriteDir(dir, snap)
		if err != nil || n == 0 {
			t.Fatalf("write seq %d: n=%d err=%v", seq, n, err)
		}
		if filepath.Base(path) != FileName(seq) {
			t.Fatalf("wrote %s, want %s", path, FileName(seq))
		}
		wrote = append(wrote, snap)
	}

	got, path, ok, err := Latest(dir)
	if !ok || err != nil {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if got.Seq != 4 || filepath.Base(path) != FileName(4) {
		t.Fatalf("latest picked seq %d (%s), want 4", got.Seq, path)
	}
	if !bytes.Equal(Encode(got), Encode(wrote[3])) {
		t.Fatal("loaded snapshot differs from written")
	}

	// Corrupt the newest: Latest must fall back to seq 3.
	if err := os.WriteFile(filepath.Join(dir, FileName(4)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, ok, err = Latest(dir)
	if !ok || err != nil || got.Seq != 3 {
		t.Fatalf("fallback: ok=%v err=%v seq=%v", ok, err, got)
	}

	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range names {
		left = append(left, e.Name())
	}
	if len(left) != 2 || left[0] != FileName(3) || left[1] != FileName(4) {
		t.Fatalf("prune left %v", left)
	}

	// Every file corrupt → explicit error, not a silent empty start.
	baddir := t.TempDir()
	os.WriteFile(filepath.Join(baddir, FileName(1)), []byte("nope"), 0o644)
	if _, _, ok, err := Latest(baddir); ok || err == nil {
		t.Fatalf("all-corrupt dir: ok=%v err=%v", ok, err)
	}
}

// randTestKeys draws n distinct-with-overwhelming-probability flow
// keys for removal lists.
func randTestKeys(rng *rand.Rand, n int) []flow.Key {
	out := make([]flow.Key, n)
	for i := range out {
		var a, b [4]byte
		rng.Read(a[:])
		rng.Read(b[:])
		out[i] = flow.Key{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
			Proto: netsim.Proto(rng.Intn(256)),
		}
	}
	return out
}

// deltaSnapshot builds a randomized incremental snapshot: the
// randSnapshot base plus the version-3 delta surface — parent link,
// per-shard removed keys, removed windows.
func deltaSnapshot(seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	snap := randSnapshot(seed)
	snap.Delta = true
	if snap.Seq < 2 {
		snap.Seq = 2
	}
	snap.BaseSeq = snap.Seq - 1
	snap.BaseCRC = rng.Uint32()
	for i := range snap.ShardStates {
		snap.ShardStates[i].Removed = randTestKeys(rng, rng.Intn(6))
	}
	snap.RemovedWindows = randTestKeys(rng, rng.Intn(6))
	snap.Predictions = nil // global log is version-1 only
	return snap
}

// forgeMetaShards rewrites the shard count in a valid encoding's meta
// section and fixes the section CRC, so only the semantic guard — not
// the checksum — stands between the decoder and a hostile count.
func forgeMetaShards(enc []byte, shards uint32) []byte {
	bad := append([]byte(nil), enc...)
	plen := binary.BigEndian.Uint64(bad[7:15]) // after magic+version+id
	payload := bad[15 : 15+plen]
	binary.BigEndian.PutUint32(payload[0:4], shards)
	binary.BigEndian.PutUint32(bad[15+plen:15+plen+4], crc32.ChecksumIEEE(payload))
	return bad
}

// TestDeltaRoundTripByteIdentical extends the core format property to
// incremental snapshots: the delta flag, parent link, and removal
// lists survive encode→decode→encode byte-identically.
func TestDeltaRoundTripByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		snap := deltaSnapshot(seed)
		enc1 := Encode(snap)
		dec, err := Decode(enc1)
		if err != nil {
			t.Fatalf("seed %d: decode delta: %v", seed, err)
		}
		if !dec.Delta || dec.BaseSeq != snap.BaseSeq || dec.BaseCRC != snap.BaseCRC {
			t.Fatalf("seed %d: parent link lost: delta=%v base=%d/%08x want %d/%08x",
				seed, dec.Delta, dec.BaseSeq, dec.BaseCRC, snap.BaseSeq, snap.BaseCRC)
		}
		if len(dec.RemovedWindows) != len(snap.RemovedWindows) {
			t.Fatalf("seed %d: removed-window list lost (%d vs %d)",
				seed, len(dec.RemovedWindows), len(snap.RemovedWindows))
		}
		for s := range snap.ShardStates {
			if len(dec.ShardStates[s].Removed) != len(snap.ShardStates[s].Removed) {
				t.Fatalf("seed %d: shard %d removed list lost", seed, s)
			}
		}
		if enc2 := Encode(dec); !bytes.Equal(enc1, enc2) {
			t.Fatalf("seed %d: delta re-encode not byte-identical (%d vs %d bytes)",
				seed, len(enc1), len(enc2))
		}
	}
}

// TestCompressedRoundTrip pins the compressed-section encoding: the
// stream CRC matches the bytes written, the decoder transparently
// inflates, and the content is exactly the uncompressed encoding's.
func TestCompressedRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, mk := range []func(int64) *Snapshot{randSnapshot, deltaSnapshot} {
			snap := mk(seed)
			var buf bytes.Buffer
			n, crc, err := WriteStream(&buf, snap, EncodeOptions{Compress: true})
			if err != nil {
				t.Fatalf("seed %d: compressed write: %v", seed, err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("seed %d: reported %d bytes, wrote %d", seed, n, buf.Len())
			}
			if got := crc32.ChecksumIEEE(buf.Bytes()); got != crc {
				t.Fatalf("seed %d: stream CRC %08x, file bytes hash %08x", seed, crc, got)
			}
			dec, err := Decode(buf.Bytes())
			if err != nil {
				t.Fatalf("seed %d: decode compressed: %v", seed, err)
			}
			if !bytes.Equal(Encode(dec), Encode(snap)) {
				t.Fatalf("seed %d: content diverged through compression", seed)
			}
		}
	}
}

// TestCompressedFileRoundTrip runs the same property through the
// atomic file writer, the path the live pipeline actually takes.
func TestCompressedFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := randSnapshot(21)
	snap.Seq = 1
	path, n, crc, err := WriteDirOpts(dir, snap, EncodeOptions{Compress: true})
	if err != nil || n == 0 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := crc32.ChecksumIEEE(data); got != crc {
		t.Fatalf("file CRC %08x, writer reported %08x", got, crc)
	}
	dec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(dec), Encode(snap)) {
		t.Fatal("compressed file content diverged")
	}
}

// TestWriteFileExactBytes pins the atomic writer's on-disk contract at
// a spread of awkward sizes: the file holds exactly the stream's bytes
// (no alignment padding survives — the direct-IO path pads its final
// block and must truncate it away) and its whole-file CRC matches what
// the writer reported, which is the value delta chaining depends on.
func TestWriteFileExactBytes(t *testing.T) {
	dir := t.TempDir()
	for seed := int64(0); seed < 8; seed++ {
		snap := randSnapshot(seed)
		snap.Seq = uint64(seed) + 1
		path, n, crc, err := WriteDirOpts(dir, snap, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != n {
			t.Fatalf("seed %d: file is %d bytes, writer reported %d", seed, len(data), n)
		}
		if got := crc32.ChecksumIEEE(data); got != crc {
			t.Fatalf("seed %d: file CRC %08x, writer reported %08x", seed, got, crc)
		}
		if !bytes.Equal(data, Encode(snap)) {
			t.Fatalf("seed %d: file bytes diverge from canonical encoding", seed)
		}
	}
}

// writeChain writes full(1) ← delta(2) ← delta(3) into dir and
// returns each file's whole-file CRC.
func writeChain(t *testing.T, dir string) [3]uint32 {
	t.Helper()
	var crcs [3]uint32
	full := randSnapshot(1)
	full.Seq = 1
	_, _, crc, err := WriteDirOpts(dir, full, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	crcs[0] = crc
	for seq := uint64(2); seq <= 3; seq++ {
		d := deltaSnapshot(int64(seq))
		d.Seq = seq
		d.BaseSeq = seq - 1
		d.BaseCRC = crcs[seq-2]
		_, _, crc, err := WriteDirOpts(dir, d, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		crcs[seq-1] = crc
	}
	return crcs
}

// TestLatestChain pins chain resolution: base-first order, every link
// verified, and fallback to the longest intact prefix when the newest
// link — or a middle one — is damaged.
func TestLatestChain(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")

	// Missing dir: clean first boot.
	if _, _, ok, err := LatestChain(dir); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}

	crcs := writeChain(t, dir)
	chain, paths, ok, err := LatestChain(dir)
	if !ok || err != nil {
		t.Fatalf("chain: ok=%v err=%v", ok, err)
	}
	if len(chain) != 3 || len(paths) != 3 {
		t.Fatalf("chain length %d, want 3", len(chain))
	}
	for i, want := range []uint64{1, 2, 3} {
		if chain[i].Seq != want {
			t.Fatalf("chain[%d].Seq = %d, want %d (not base-first?)", i, chain[i].Seq, want)
		}
	}
	if chain[0].Delta || !chain[1].Delta || !chain[2].Delta {
		t.Fatal("chain shape wrong: want full,delta,delta")
	}

	// Truncate the newest delta — the crash-mid-chain case. Restore
	// must fall back to the intact [1,2] prefix.
	path3 := filepath.Join(dir, FileName(3))
	good3, err := os.ReadFile(path3)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path3, good3[:len(good3)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	chain, _, ok, err = LatestChain(dir)
	if !ok || err != nil || len(chain) != 2 || chain[1].Seq != 2 {
		t.Fatalf("fallback after torn newest: ok=%v err=%v len=%d", ok, err, len(chain))
	}

	// Restore the newest but rewrite its parent with different (valid)
	// bytes: the recorded BaseCRC no longer matches, so the 3-chain is
	// rejected and resolution falls back to the rewritten 2-chain.
	if err := os.WriteFile(path3, good3, 0o644); err != nil {
		t.Fatal(err)
	}
	alt := deltaSnapshot(99)
	alt.Seq = 2
	alt.BaseSeq = 1
	alt.BaseCRC = crcs[0]
	if _, _, _, err := WriteDirOpts(dir, alt, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	chain, _, ok, err = LatestChain(dir)
	if !ok || err != nil || len(chain) != 2 || chain[1].Seq != 2 {
		t.Fatalf("fallback after parent rewrite: ok=%v err=%v len=%d", ok, err, len(chain))
	}

	// Base gone entirely: nothing restorable, loud error.
	os.Remove(filepath.Join(dir, FileName(1)))
	if _, _, ok, err := LatestChain(dir); ok || err == nil {
		t.Fatalf("orphaned deltas: ok=%v err=%v", ok, err)
	}
}

// TestPruneKeepsChainAncestors pins chain-aware retention: pruning to
// one file keeps the newest delta plus every ancestor it needs, and
// removes superseded history.
func TestPruneKeepsChainAncestors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	writeChain(t, dir) // 1 ← 2 ← 3, all needed by 3

	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	names, err := candidates(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("prune orphaned the chain: left %v", names)
	}

	// A newer full supersedes the chain: now prune may drop it all.
	full := randSnapshot(4)
	full.Seq = 4
	if _, _, _, err := WriteDirOpts(dir, full, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	names, err = candidates(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != FileName(4) {
		t.Fatalf("prune after new full left %v, want only %s", names, FileName(4))
	}
}

// TestReadMeta pins the cheap meta reader across versions and both
// snapshot kinds.
func TestReadMeta(t *testing.T) {
	dir := t.TempDir()
	crcs := writeChain(t, dir)

	m, err := ReadMeta(filepath.Join(dir, FileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != Version || m.Seq != 1 || m.Delta {
		t.Fatalf("full meta = %+v", m)
	}
	m, err = ReadMeta(filepath.Join(dir, FileName(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Delta || m.BaseSeq != 2 || m.BaseCRC != crcs[1] {
		t.Fatalf("delta meta = %+v, want base 2/%08x", m, crcs[1])
	}

	// Version-1 file: meta still reads, with no delta surface.
	v1 := randSnapshot(5)
	v1.Seq = 7
	p := filepath.Join(dir, FileName(7))
	if err := os.WriteFile(p, EncodeV1(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err = ReadMeta(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 || m.Seq != 7 || m.Delta {
		t.Fatalf("v1 meta = %+v", m)
	}

	if _, err := ReadMeta(filepath.Join(dir, "nope.amck")); err == nil {
		t.Fatal("missing file read meta")
	}
}

// TestDecodeRejectsHostileShardCount forges an otherwise-valid file
// whose meta section claims an enormous shard count; the decoder must
// reject it by arithmetic — remaining payload cannot hold that many
// shard sections — instead of preallocating gigabytes.
func TestDecodeRejectsHostileShardCount(t *testing.T) {
	enc := Encode(randSnapshot(3))
	for _, n := range []uint32{1 << 20, 1 << 24, 0xFFFFFFFF} {
		if _, err := Decode(forgeMetaShards(enc, n)); err == nil {
			t.Fatalf("accepted forged shard count %d", n)
		}
	}
	// Sanity: re-forging the true count still decodes.
	snap, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(forgeMetaShards(enc, uint32(snap.Shards))); err != nil {
		t.Fatalf("round-tripping the true shard count broke decode: %v", err)
	}
}
