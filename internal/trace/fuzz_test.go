// Fuzz target for the .amtr trace reader: parsing arbitrary bytes
// never panics or preallocates unbounded memory, and any trace that
// parses survives a Write→Read round trip with identical records.
//
// This fuzzer found a real bug: Read trusted the header's record
// count for slice preallocation, so a 14-byte hostile header claiming
// 2^28 records reserved ~20 GB before the first record read could
// fail. Read now caps the preallocation (see trace.go).
package trace

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func seedRecords() []Record {
	return []Record{
		{
			At:  netsim.Millisecond,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.168.0.9"),
			SrcPort: 4321, DstPort: 80, Proto: netsim.TCP, Flags: netsim.FlagSYN,
			Length: 512, Label: true, AttackType: "synflood",
		},
		{
			At:  2 * netsim.Millisecond,
			Src: netip.MustParseAddr("10.0.0.2"), Dst: netip.MustParseAddr("192.168.0.9"),
			SrcPort: 53, DstPort: 53, Proto: netsim.UDP,
			Length: 64, AttackType: "",
		},
	}
}

func encodeSeed(t testing.TB, recs []Record) []byte {
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzRead(f *testing.F) {
	f.Add(encodeSeed(f, seedRecords()))
	f.Add(encodeSeed(f, nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatalf("re-encode of decoded trace: %v", err)
		}
		recs2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("round trip changed count: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recs2[i]) {
				t.Fatalf("record %d changed in round trip:\n%+v\n%+v", i, recs[i], recs2[i])
			}
		}
	})
}

// TestReadHostileCountBounded is the regression test for the
// fuzz-found preallocation bug: a valid header claiming the maximum
// plausible record count with no payload must fail fast instead of
// reserving gigabytes.
func TestReadHostileCountBounded(t *testing.T) {
	hostile := []byte{
		0x41, 0x4D, 0x54, 0x52, // magic "AMTR"
		1,                                              // version
		0,                                              // zero attack types
		0x00, 0x00, 0x00, 0x00, 0x10, 0x00, 0x00, 0x00, // count = 1<<28
	}
	if _, err := Read(bytes.NewReader(hostile)); err == nil {
		t.Fatal("truncated trace with huge claimed count parsed successfully")
	}
}

// TestFuzzSeedCorpus materializes the in-code seeds as committed
// corpus files under testdata/fuzz/.
func TestFuzzSeedCorpus(t *testing.T) {
	writeCorpusEntry(t, "FuzzRead", fmt.Sprintf("[]byte(%q)\n", encodeSeed(t, seedRecords())))
	writeCorpusEntry(t, "FuzzRead", fmt.Sprintf("[]byte(%q)\n", encodeSeed(t, nil)))
}

// writeCorpusEntry writes one Go fuzz corpus file (format "go test
// fuzz v1"), content-addressed so repeated runs are idempotent.
func writeCorpusEntry(t *testing.T, fuzzName, args string) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := []byte("go test fuzz v1\n" + args)
	sum := uint64(14695981039346656037)
	for _, b := range content {
		sum = (sum ^ uint64(b)) * 1099511628211
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%016x", sum))
	if old, err := os.ReadFile(path); err == nil && bytes.Equal(old, content) {
		return
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
}
