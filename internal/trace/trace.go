// Package trace provides a pcap-like packet trace format and a
// tcpreplay-equivalent replayer for the netsim fabric.
//
// The paper's testbed experiments replay captured production traffic
// with `tcpreplay -i <iface> -p <count> <pcap>`; Replayer reproduces
// that workflow against simulated hosts, including the -p packet
// bound and timing acceleration.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"

	"github.com/amlight/intddos/internal/netsim"
)

// Record is one captured packet: header fields, capture timestamp,
// and the generator's ground-truth label.
type Record struct {
	At      netsim.Time
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   netsim.Proto
	Flags   netsim.TCPFlags
	Length  uint16

	Label      bool
	AttackType string
}

// Packet materializes the record as a sendable packet.
func (r *Record) Packet() *netsim.Packet {
	return &netsim.Packet{
		Src:        r.Src,
		Dst:        r.Dst,
		SrcPort:    r.SrcPort,
		DstPort:    r.DstPort,
		Proto:      r.Proto,
		Flags:      r.Flags,
		Length:     int(r.Length),
		Label:      r.Label,
		AttackType: r.AttackType,
	}
}

// SortByTime orders records chronologically (stable, so simultaneous
// records keep generation order).
func SortByTime(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
}

const (
	fileMagic   uint32 = 0x414D5452 // "AMTR"
	fileVersion uint8  = 1
)

// Write serializes records to w. Attack-type strings are interned in
// a table so each record stores a one-byte index.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	types := make([]string, 0, 8)
	index := make(map[string]uint8, 8)
	for _, r := range recs {
		if _, ok := index[r.AttackType]; !ok {
			if len(types) == 256 {
				return errors.New("trace: more than 256 attack types")
			}
			index[r.AttackType] = uint8(len(types))
			types = append(types, r.AttackType)
		}
	}
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], fileMagic)
	b[4] = fileVersion
	b[5] = uint8(len(types))
	if _, err := bw.Write(b[:6]); err != nil {
		return err
	}
	for _, s := range types {
		if len(s) > 255 {
			return fmt.Errorf("trace: attack type %q too long", s)
		}
		if err := bw.WriteByte(uint8(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	binary.BigEndian.PutUint64(b[:], uint64(len(recs)))
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		binary.BigEndian.PutUint64(b[:], uint64(r.At))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
		src, dst := r.Src.As4(), r.Dst.As4()
		bw.Write(src[:])
		bw.Write(dst[:])
		binary.BigEndian.PutUint16(b[:2], r.SrcPort)
		bw.Write(b[:2])
		binary.BigEndian.PutUint16(b[:2], r.DstPort)
		bw.Write(b[:2])
		bw.WriteByte(byte(r.Proto))
		bw.WriteByte(byte(r.Flags))
		binary.BigEndian.PutUint16(b[:2], r.Length)
		bw.Write(b[:2])
		label := byte(0)
		if r.Label {
			label = 1
		}
		bw.WriteByte(label)
		if err := bw.WriteByte(index[r.AttackType]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace previously produced by Write.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var b [8]byte
	if _, err := io.ReadFull(br, b[:6]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if binary.BigEndian.Uint32(b[:4]) != fileMagic {
		return nil, errors.New("trace: bad magic")
	}
	if b[4] != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", b[4])
	}
	nTypes := int(b[5])
	types := make([]string, nTypes)
	for i := 0; i < nTypes; i++ {
		n, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(br, s); err != nil {
			return nil, err
		}
		types[i] = string(s)
	}
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return nil, err
	}
	count := binary.BigEndian.Uint64(b[:])
	const maxRecords = 1 << 28
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Cap the preallocation: count is attacker-controlled (a truncated
	// or hostile header can claim up to maxRecords ≈ 2^28, which would
	// reserve tens of gigabytes before the first record read fails).
	// Found by FuzzRead; grow organically past the cap.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	recs := make([]Record, 0, prealloc)
	var rec [26]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		typeIdx := rec[25]
		if int(typeIdx) >= nTypes {
			return nil, fmt.Errorf("trace: record %d: attack type index %d out of range", i, typeIdx)
		}
		recs = append(recs, Record{
			At:         netsim.Time(binary.BigEndian.Uint64(rec[:8])),
			Src:        netip.AddrFrom4([4]byte(rec[8:12])),
			Dst:        netip.AddrFrom4([4]byte(rec[12:16])),
			SrcPort:    binary.BigEndian.Uint16(rec[16:18]),
			DstPort:    binary.BigEndian.Uint16(rec[18:20]),
			Proto:      netsim.Proto(rec[20]),
			Flags:      netsim.TCPFlags(rec[21]),
			Length:     binary.BigEndian.Uint16(rec[22:24]),
			Label:      rec[24] == 1,
			AttackType: types[typeIdx],
		})
	}
	return recs, nil
}

// WriteFile writes records to path.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads records from path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
