package trace

import (
	"bytes"
	"net/netip"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/amlight/intddos/internal/netsim"
)

func sampleRecords() []Record {
	return []Record{
		{
			At:  100 * netsim.Microsecond,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			SrcPort: 1234, DstPort: 80, Proto: netsim.TCP, Flags: netsim.FlagSYN,
			Length: 60, Label: false, AttackType: "benign",
		},
		{
			At:  250 * netsim.Microsecond,
			Src: netip.MustParseAddr("192.0.2.66"), Dst: netip.MustParseAddr("10.0.0.2"),
			SrcPort: 40000, DstPort: 80, Proto: netsim.TCP, Flags: netsim.FlagSYN,
			Length: 40, Label: true, AttackType: "synflood",
		},
		{
			At:  300 * netsim.Microsecond,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			SrcPort: 1234, DstPort: 80, Proto: netsim.UDP,
			Length: 1500, Label: false, AttackType: "benign",
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.amtr")
	recs := sampleRecords()
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d, want %d", len(got), len(recs))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	Write(&buf, sampleRecords())
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(at uint32, sport, dport uint16, length uint16, label bool) bool {
		recs := []Record{{
			At:  netsim.Time(at),
			Src: netip.MustParseAddr("10.9.8.7"), Dst: netip.MustParseAddr("10.6.5.4"),
			SrcPort: sport, DstPort: dport, Proto: netsim.TCP,
			Length: length, Label: label, AttackType: "t",
		}}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && len(got) == 1 && got[0] == recs[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortByTimeStable(t *testing.T) {
	recs := []Record{
		{At: 30, SrcPort: 1}, {At: 10, SrcPort: 2}, {At: 30, SrcPort: 3}, {At: 20, SrcPort: 4},
	}
	SortByTime(recs)
	wantPorts := []uint16{2, 4, 1, 3}
	for i, w := range wantPorts {
		if recs[i].SrcPort != w {
			t.Fatalf("order = %v", recs)
		}
	}
}

func replayRig(t *testing.T) (*netsim.Engine, *netsim.Host, *netsim.Host) {
	t.Helper()
	eng := netsim.NewEngine()
	a := netsim.NewHost(eng, "a", netip.MustParseAddr("10.0.0.1"))
	b := netsim.NewHost(eng, "b", netip.MustParseAddr("10.0.0.2"))
	a.Attach(0, b)
	return eng, a, b
}

func TestReplayerPreservesTiming(t *testing.T) {
	eng, a, b := replayRig(t)
	var times []netsim.Time
	b.OnReceive = func(p *netsim.Packet) { times = append(times, eng.Now()) }
	rp := NewReplayer(eng, a, sampleRecords())
	rp.Start()
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d, want 3", len(times))
	}
	// Gaps: 150µs then 50µs, regardless of the absolute trace epoch.
	if d := times[1] - times[0]; d != 150*netsim.Microsecond {
		t.Errorf("gap1 = %v, want 150µs", d)
	}
	if d := times[2] - times[1]; d != 50*netsim.Microsecond {
		t.Errorf("gap2 = %v, want 50µs", d)
	}
}

func TestReplayerSpeedup(t *testing.T) {
	eng, a, b := replayRig(t)
	var times []netsim.Time
	b.OnReceive = func(p *netsim.Packet) { times = append(times, eng.Now()) }
	rp := NewReplayer(eng, a, sampleRecords())
	rp.Speed = 2.0
	rp.Start()
	eng.Run()
	if d := times[1] - times[0]; d != 75*netsim.Microsecond {
		t.Errorf("gap1 at 2x = %v, want 75µs", d)
	}
}

func TestReplayerMaxPackets(t *testing.T) {
	eng, a, b := replayRig(t)
	rp := NewReplayer(eng, a, sampleRecords())
	rp.MaxPackets = 2
	done := false
	rp.OnDone = func() { done = true }
	rp.Start()
	eng.Run()
	if b.Received != 2 {
		t.Errorf("received %d, want 2 (-p bound)", b.Received)
	}
	if rp.Sent() != 2 {
		t.Errorf("Sent() = %d, want 2", rp.Sent())
	}
	if !done {
		t.Error("OnDone not invoked")
	}
}

func TestReplayerStartAtOffset(t *testing.T) {
	eng, a, b := replayRig(t)
	var first netsim.Time
	b.OnReceive = func(p *netsim.Packet) {
		if first == 0 {
			first = eng.Now()
		}
	}
	rp := NewReplayer(eng, a, sampleRecords())
	rp.StartAt = 5 * netsim.Millisecond
	rp.Start()
	eng.Run()
	if first != 5*netsim.Millisecond {
		t.Errorf("first delivery at %v, want 5ms", first)
	}
}

func TestReplayerEmptyTrace(t *testing.T) {
	eng, a, _ := replayRig(t)
	done := false
	rp := NewReplayer(eng, a, nil)
	rp.OnDone = func() { done = true }
	rp.Start()
	eng.Run()
	if !done {
		t.Error("OnDone not invoked for empty trace")
	}
}

func TestRecordPacketMaterialization(t *testing.T) {
	r := sampleRecords()[1]
	p := r.Packet()
	if p.Src != r.Src || p.DstPort != r.DstPort || p.Length != int(r.Length) ||
		!p.Label || p.AttackType != "synflood" {
		t.Errorf("packet = %+v", p)
	}
}
