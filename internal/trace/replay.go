package trace

import (
	"github.com/amlight/intddos/internal/netsim"
)

// Replayer injects trace records through a host, preserving original
// inter-packet timing (optionally accelerated). It is the simulation
// counterpart of `tcpreplay -i <iface> -p <count> <pcap>`.
type Replayer struct {
	Host    *netsim.Host
	Records []Record

	// Speed scales timing: 2.0 replays twice as fast. Zero means 1.0.
	Speed float64
	// MaxPackets, if positive, bounds the number of packets replayed
	// (tcpreplay's -p flag, ≈2500 per flow type in the paper's tests).
	MaxPackets int
	// StartAt offsets the first packet to this virtual time; the trace
	// timeline is shifted so its first record fires then. When zero,
	// the trace keeps its absolute timestamps (the first record fires
	// at its own At), so capture-relative schedules stay aligned.
	StartAt netsim.Time

	// OnDone runs after the final packet is sent.
	OnDone func()

	eng  *netsim.Engine
	sent int
}

// NewReplayer builds a replayer for recs through host.
func NewReplayer(eng *netsim.Engine, host *netsim.Host, recs []Record) *Replayer {
	return &Replayer{Host: host, Records: recs, eng: eng}
}

// Sent reports packets replayed so far.
func (rp *Replayer) Sent() int { return rp.sent }

// Start schedules the replay. Records are chained one event at a
// time so arbitrarily large traces do not flood the event queue.
func (rp *Replayer) Start() {
	if len(rp.Records) == 0 {
		if rp.OnDone != nil {
			rp.OnDone()
		}
		return
	}
	if rp.Speed == 0 {
		rp.Speed = 1.0
	}
	start := rp.StartAt
	if start == 0 && rp.Speed == 1.0 {
		start = rp.Records[0].At // absolute replay preserves the capture timeline
	}
	if start < rp.eng.Now() {
		start = rp.eng.Now()
	}
	rp.eng.Schedule(start, func() { rp.sendNext(0, start, rp.Records[0].At) })
}

// sendNext transmits record i and chains the next one.
func (rp *Replayer) sendNext(i int, base netsim.Time, traceBase netsim.Time) {
	rec := &rp.Records[i]
	rp.Host.Send(rec.Packet())
	rp.sent++
	if rp.sent == rp.MaxPackets || i+1 == len(rp.Records) {
		if rp.OnDone != nil {
			rp.OnDone()
		}
		return
	}
	next := &rp.Records[i+1]
	gap := netsim.Time(float64(next.At-traceBase) / rp.Speed)
	at := base + gap
	if at < rp.eng.Now() {
		at = rp.eng.Now()
	}
	rp.eng.Schedule(at, func() { rp.sendNext(i+1, base, traceBase) })
}
