package netsim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in the discrete-event engine.
type Event struct {
	At Time
	Fn func()

	seq   uint64 // tie-breaker preserving schedule order at equal times
	index int    // heap bookkeeping
}

// eventQueue is a min-heap of events ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine drives the simulation. It is single-goroutine and
// deterministic: events at the same timestamp fire in scheduling
// order. The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	pktSeq uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at absolute time at. Scheduling in the
// past panics: it would silently reorder causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("netsim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &Event{At: at, Fn: fn, seq: e.seq})
}

// After registers fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

// NextPacketID returns a fresh monotonically increasing packet ID.
func (e *Engine) NextPacketID() uint64 {
	e.pktSeq++
	return e.pktSeq
}

// Step runs the earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	ev.Fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps ≤ deadline, then advances
// the clock to the deadline (if it has not passed it already).
func (e *Engine) RunUntil(deadline Time) {
	for e.queue.Len() > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return e.queue.Len() }
