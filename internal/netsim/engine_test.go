package netsim

import "testing"

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(30, func() { order = append(order, 3) })
	eng.Schedule(10, func() { order = append(order, 1) })
	eng.Schedule(20, func() { order = append(order, 2) })
	eng.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Now() != 30 {
		t.Errorf("Now() = %v, want 30", eng.Now())
	}
}

func TestEngineStableOrderAtEqualTimes(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		eng.Schedule(42, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time ran out of schedule order: pos %d got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	hits := 0
	eng.Schedule(5, func() {
		hits++
		eng.After(5, func() {
			hits++
			if eng.Now() != 10 {
				t.Errorf("nested event at %v, want 10", eng.Now())
			}
		})
	})
	eng.Run()
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(100, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	eng.Schedule(50, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	ran := 0
	eng.Schedule(10, func() { ran++ })
	eng.Schedule(20, func() { ran++ })
	eng.Schedule(30, func() { ran++ })
	eng.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran = %d events by t=20, want 2", ran)
	}
	if eng.Now() != 20 {
		t.Errorf("Now() = %v, want 20", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", eng.Pending())
	}
	eng.RunUntil(100)
	if eng.Now() != 100 {
		t.Errorf("Now() after idle advance = %v, want 100", eng.Now())
	}
}

func TestEngineStepOnEmptyQueue(t *testing.T) {
	eng := NewEngine()
	if eng.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestNextPacketIDMonotonic(t *testing.T) {
	eng := NewEngine()
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		id := eng.NextPacketID()
		if id <= prev {
			t.Fatalf("packet ID %d not greater than previous %d", id, prev)
		}
		prev = id
	}
}
