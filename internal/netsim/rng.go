package netsim

import "math/rand"

// NewRNG returns a deterministic random source for workload
// generation. All stochastic components in the repository derive their
// randomness from explicitly seeded sources so experiments replay
// bit-identically.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
