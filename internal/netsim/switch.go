package netsim

import (
	"fmt"
	"net/netip"
)

// Forwarder decides the egress port for a packet arriving on
// ingressPort. Returning a negative port drops the packet.
type Forwarder interface {
	EgressPort(p *Packet, ingressPort uint16) int
}

// ForwarderFunc adapts a function to the Forwarder interface.
type ForwarderFunc func(p *Packet, ingressPort uint16) int

// EgressPort implements Forwarder.
func (f ForwarderFunc) EgressPort(p *Packet, ingressPort uint16) int {
	return f(p, ingressPort)
}

// StaticForwarder forwards by destination address, with an optional
// per-ingress-port override (used to model the testbed's port 1↔2 and
// 3↔4 loops).
type StaticForwarder struct {
	ByDst     map[netip.Addr]uint16
	ByIngress map[uint16]uint16
	Default   int // egress when no rule matches; negative drops
}

// NewStaticForwarder returns a forwarder that drops unmatched packets.
func NewStaticForwarder() *StaticForwarder {
	return &StaticForwarder{
		ByDst:     make(map[netip.Addr]uint16),
		ByIngress: make(map[uint16]uint16),
		Default:   -1,
	}
}

// EgressPort implements Forwarder. Ingress overrides win over
// destination rules so loop wiring takes precedence.
func (f *StaticForwarder) EgressPort(p *Packet, ingressPort uint16) int {
	if out, ok := f.ByIngress[ingressPort]; ok {
		return int(out)
	}
	if out, ok := f.ByDst[p.Dst]; ok {
		return int(out)
	}
	return f.Default
}

// SwitchConfig parameterizes a Switch.
type SwitchConfig struct {
	ID uint32
	// Ports is the number of egress-capable ports, numbered 1..Ports.
	Ports int
	// PortRateBps is the egress line rate per port.
	PortRateBps int64
	// QueueCapPackets bounds each egress queue.
	QueueCapPackets int
	// PipelineDelay is the fixed parse/match/action latency added
	// between ingress and enqueue.
	PipelineDelay Time
}

// DefaultSwitchConfig mirrors the testbed switch at a scaled-down
// rate: the paper ran its experiments "at much lower packet rate
// levels" (§V) than the 100 Gbps line rate for exactly this reason.
func DefaultSwitchConfig(id uint32) SwitchConfig {
	return SwitchConfig{
		ID:              id,
		Ports:           8,
		PortRateBps:     1_000_000_000, // 1 Gbps scaled stand-in
		QueueCapPackets: 512,
		PipelineDelay:   400 * Nanosecond,
	}
}

// Switch is an output-queued packet switch. Each egress port has a
// rate-limited FIFO OutputQueue; per-packet HopRecords capture
// ingress time, egress time, and queue depth at dequeue — the INT
// metadata triple from the paper.
type Switch struct {
	eng *Engine
	cfg SwitchConfig

	Forwarder Forwarder
	queues    []*OutputQueue // index 0 unused; ports are 1-based
	wires     []*Link        // egress wiring, parallel to queues

	// OnForward is called after a packet's hop record is appended,
	// before it leaves on the egress link. The telemetry layer hooks
	// here to act as INT source/transit/sink.
	OnForward func(p *Packet, hop HopRecord, egressPort uint16)

	// Stats
	RxPackets   int
	TxPackets   int
	FwdDrops    int // dropped by forwarding decision
	QueueDrops  int // dropped by full egress queues
	RxBytes     int64
	TxBytes     int64
	pendingHops map[uint64]HopRecord // in-flight per-packet ingress records
}

// NewSwitch constructs a switch from cfg. Attach egress wiring with
// Connect and set Forwarder before injecting traffic.
func NewSwitch(eng *Engine, cfg SwitchConfig) *Switch {
	sw := &Switch{
		eng:         eng,
		cfg:         cfg,
		queues:      make([]*OutputQueue, cfg.Ports+1),
		wires:       make([]*Link, cfg.Ports+1),
		pendingHops: make(map[uint64]HopRecord),
	}
	for port := 1; port <= cfg.Ports; port++ {
		q := NewOutputQueue(eng, cfg.PortRateBps, cfg.QueueCapPackets)
		p := uint16(port)
		q.OnDequeue = func(pkt *Packet, depthPkts, depthBytes int) {
			sw.finishForward(pkt, p, depthPkts, depthBytes)
		}
		q.OnDrop = func(*Packet) { sw.QueueDrops++ }
		sw.queues[port] = q
	}
	return sw
}

// ID returns the switch identifier carried in hop records.
func (sw *Switch) ID() uint32 { return sw.cfg.ID }

// Config returns the switch configuration.
func (sw *Switch) Config() SwitchConfig { return sw.cfg }

// Connect attaches the egress side of port to dst over a link with
// the given propagation delay.
func (sw *Switch) Connect(port uint16, delay Time, dst Receiver) {
	sw.mustPort(port)
	sw.wires[port] = NewLink(sw.eng, delay, dst)
}

// Port returns a Receiver that injects packets into the switch as if
// arriving on the given ingress port.
func (sw *Switch) Port(port uint16) Receiver {
	sw.mustPort(port)
	return ReceiverFunc(func(p *Packet) { sw.ingress(p, port) })
}

// Wire exposes the egress link for a connected port (nil before
// Connect), so callers can attach link impairments or read stats.
func (sw *Switch) Wire(port uint16) *Link {
	sw.mustPort(port)
	return sw.wires[port]
}

// Queue exposes the egress queue for a port, mainly for tests and
// stats collection.
func (sw *Switch) Queue(port uint16) *OutputQueue {
	sw.mustPort(port)
	return sw.queues[port]
}

func (sw *Switch) mustPort(port uint16) {
	if port == 0 || int(port) > sw.cfg.Ports {
		panic(fmt.Sprintf("netsim: switch %d has no port %d", sw.cfg.ID, port))
	}
}

// ingress runs the forwarding pipeline for a packet arriving on port.
func (sw *Switch) ingress(p *Packet, port uint16) {
	sw.RxPackets++
	sw.RxBytes += int64(p.Length)
	ingressTime := sw.eng.Now()
	out := -1
	if sw.Forwarder != nil {
		out = sw.Forwarder.EgressPort(p, port)
	}
	if out <= 0 || out > sw.cfg.Ports {
		sw.FwdDrops++
		p.Dropped = true
		return
	}
	sw.pendingHops[p.ID] = HopRecord{
		SwitchID:    sw.cfg.ID,
		IngressPort: port,
		EgressPort:  uint16(out),
		IngressTime: ingressTime,
	}
	sw.eng.After(sw.cfg.PipelineDelay, func() {
		if !sw.queues[out].Enqueue(p) {
			delete(sw.pendingHops, p.ID)
		}
	})
}

// finishForward completes the hop record at dequeue time and sends the
// packet out the egress wire.
func (sw *Switch) finishForward(p *Packet, port uint16, depthPkts, depthBytes int) {
	hop, ok := sw.pendingHops[p.ID]
	if !ok {
		// A packet can legitimately lose its pending record only via a
		// queue drop, which deletes it before dequeue can fire.
		panic(fmt.Sprintf("netsim: switch %d dequeued packet %d with no pending hop", sw.cfg.ID, p.ID))
	}
	delete(sw.pendingHops, p.ID)
	hop.EgressTime = sw.eng.Now()
	hop.QueueDepth = depthPkts
	hop.QueueBytes = depthBytes
	p.Hops = append(p.Hops, hop)
	sw.TxPackets++
	sw.TxBytes += int64(p.Length)
	if sw.OnForward != nil {
		sw.OnForward(p, hop, port)
	}
	if wire := sw.wires[port]; wire != nil {
		wire.Send(p)
	}
}
