package netsim

import (
	"net/netip"
	"testing"
)

// twoHostTopology wires hostA -> switch port 1 -> port 2 -> hostB.
func twoHostTopology(eng *Engine) (*Host, *Host, *Switch) {
	a := NewHost(eng, "a", netip.MustParseAddr("10.0.0.1"))
	b := NewHost(eng, "b", netip.MustParseAddr("10.0.0.2"))
	sw := NewSwitch(eng, DefaultSwitchConfig(1))
	fwd := NewStaticForwarder()
	fwd.ByDst[a.Addr] = 1
	fwd.ByDst[b.Addr] = 2
	sw.Forwarder = fwd
	a.Attach(1*Microsecond, sw.Port(1))
	b.Attach(1*Microsecond, sw.Port(2))
	sw.Connect(1, 1*Microsecond, a)
	sw.Connect(2, 1*Microsecond, b)
	return a, b, sw
}

func TestSwitchDeliversEndToEnd(t *testing.T) {
	eng := NewEngine()
	a, b, sw := twoHostTopology(eng)
	var got *Packet
	b.OnReceive = func(p *Packet) { got = p }
	p := &Packet{Dst: b.Addr, DstPort: 80, SrcPort: 12345, Proto: TCP, Length: 1000}
	a.Send(p)
	eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Src != a.Addr {
		t.Errorf("Src = %v, want %v", got.Src, a.Addr)
	}
	if got.DeliveredAt == 0 {
		t.Error("DeliveredAt not stamped")
	}
	if sw.RxPackets != 1 || sw.TxPackets != 1 {
		t.Errorf("switch rx=%d tx=%d, want 1/1", sw.RxPackets, sw.TxPackets)
	}
}

func TestSwitchHopRecord(t *testing.T) {
	eng := NewEngine()
	a, b, sw := twoHostTopology(eng)
	var got *Packet
	b.OnReceive = func(p *Packet) { got = p }
	a.Send(&Packet{Dst: b.Addr, Proto: UDP, Length: 500})
	eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if len(got.Hops) != 1 {
		t.Fatalf("hops = %d, want 1", len(got.Hops))
	}
	h := got.Hops[0]
	if h.SwitchID != sw.ID() {
		t.Errorf("SwitchID = %d, want %d", h.SwitchID, sw.ID())
	}
	if h.IngressPort != 1 || h.EgressPort != 2 {
		t.Errorf("ports = %d->%d, want 1->2", h.IngressPort, h.EgressPort)
	}
	if h.EgressTime <= h.IngressTime {
		t.Errorf("egress %v not after ingress %v", h.EgressTime, h.IngressTime)
	}
	if h.HopLatency() < sw.Config().PipelineDelay {
		t.Errorf("hop latency %v below pipeline delay", h.HopLatency())
	}
	if h.QueueDepth != 0 {
		t.Errorf("lone packet saw queue depth %d, want 0", h.QueueDepth)
	}
}

func TestSwitchQueueDepthUnderBurst(t *testing.T) {
	eng := NewEngine()
	a, b, _ := twoHostTopology(eng)
	var depths []int
	b.OnReceive = func(p *Packet) {
		h, _ := p.LastHop()
		depths = append(depths, h.QueueDepth)
	}
	// Burst of simultaneous sends: later packets must observe deeper queues.
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Dst: b.Addr, Proto: TCP, Length: 1500})
	}
	eng.Run()
	if len(depths) != 10 {
		t.Fatalf("delivered %d, want 10", len(depths))
	}
	if depths[0] != 9 || depths[9] != 0 {
		t.Errorf("depths = %v, want first 9, last 0", depths)
	}
}

func TestSwitchDropsUnroutable(t *testing.T) {
	eng := NewEngine()
	a, _, sw := twoHostTopology(eng)
	p := &Packet{Dst: netip.MustParseAddr("192.0.2.99"), Proto: TCP, Length: 100}
	a.Send(p)
	eng.Run()
	if sw.FwdDrops != 1 {
		t.Errorf("FwdDrops = %d, want 1", sw.FwdDrops)
	}
	if !p.Dropped {
		t.Error("unroutable packet not marked Dropped")
	}
}

func TestSwitchQueueOverflowDrops(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultSwitchConfig(1)
	cfg.QueueCapPackets = 4
	a := NewHost(eng, "a", netip.MustParseAddr("10.0.0.1"))
	b := NewHost(eng, "b", netip.MustParseAddr("10.0.0.2"))
	sw := NewSwitch(eng, cfg)
	fwd := NewStaticForwarder()
	fwd.ByDst[b.Addr] = 2
	sw.Forwarder = fwd
	a.Attach(0, sw.Port(1))
	sw.Connect(2, 0, b)
	for i := 0; i < 20; i++ {
		a.Send(&Packet{Dst: b.Addr, Proto: UDP, Length: 1500})
	}
	eng.Run()
	if sw.QueueDrops == 0 {
		t.Error("expected queue drops under overload")
	}
	if b.Received+sw.QueueDrops != 20 {
		t.Errorf("delivered %d + dropped %d != 20", b.Received, sw.QueueDrops)
	}
}

func TestSwitchIngressOverrideForwarding(t *testing.T) {
	eng := NewEngine()
	a, b, sw := twoHostTopology(eng)
	// Override: everything arriving on port 1 goes to port 2 regardless
	// of destination (models the testbed port loop wiring).
	fwd := sw.Forwarder.(*StaticForwarder)
	fwd.ByIngress[1] = 2
	var got int
	b.OnReceive = func(p *Packet) { got++ }
	a.Send(&Packet{Dst: netip.MustParseAddr("203.0.113.50"), Proto: TCP, Length: 100})
	eng.Run()
	if got != 1 {
		t.Errorf("ingress override delivered %d, want 1", got)
	}
}

func TestSwitchOnForwardHook(t *testing.T) {
	eng := NewEngine()
	a, b, sw := twoHostTopology(eng)
	var hookPort uint16
	var hookHop HopRecord
	sw.OnForward = func(p *Packet, hop HopRecord, egress uint16) {
		hookPort = egress
		hookHop = hop
	}
	a.Send(&Packet{Dst: b.Addr, Proto: TCP, Length: 100})
	eng.Run()
	if hookPort != 2 {
		t.Errorf("hook egress = %d, want 2", hookPort)
	}
	if hookHop.SwitchID != sw.ID() {
		t.Errorf("hook hop switch = %d, want %d", hookHop.SwitchID, sw.ID())
	}
}

func TestFiveTupleFormat(t *testing.T) {
	p := &Packet{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 1234, DstPort: 80, Proto: TCP,
	}
	want := "10.0.0.1:1234>10.0.0.2:80/TCP"
	if got := p.FiveTuple(); got != want {
		t.Errorf("FiveTuple() = %q, want %q", got, want)
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("flags = %q, want SYN|ACK", got)
	}
	if got := TCPFlags(0).String(); got != "-" {
		t.Errorf("zero flags = %q, want -", got)
	}
	if !(FlagSYN | FlagACK).Has(FlagSYN) {
		t.Error("Has(SYN) = false on SYN|ACK")
	}
	if (FlagSYN).Has(FlagSYN | FlagACK) {
		t.Error("Has(SYN|ACK) = true on bare SYN")
	}
}

func TestProtoString(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" || ICMP.String() != "ICMP" {
		t.Error("proto names wrong")
	}
	if Proto(99).String() != "proto(99)" {
		t.Errorf("unknown proto = %q", Proto(99).String())
	}
}
