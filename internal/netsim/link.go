package netsim

// Receiver is anything that can accept a packet: a switch port, a
// host, or a tap such as a telemetry collector.
type Receiver interface {
	Receive(p *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(p *Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(p *Packet) { f(p) }

// Link is a unidirectional wire with fixed propagation delay.
// Serialization delay is modelled at the sender's output queue, so the
// link itself only defers delivery. Bidirectional connectivity is two
// Links.
type Link struct {
	eng   *Engine
	Delay Time
	Dst   Receiver

	// Delivered counts packets that transited the link.
	Delivered int

	// imp, when set by SetImpairment, routes Send through the
	// adverse-network pipeline (impair.go). Nil keeps the exact
	// legacy delivery path — bit-identical with impairment off.
	imp *impairState
}

// NewLink builds a link delivering to dst after delay.
func NewLink(eng *Engine, delay Time, dst Receiver) *Link {
	return &Link{eng: eng, Delay: delay, Dst: dst}
}

// Send schedules delivery of p to the link's destination.
func (l *Link) Send(p *Packet) {
	if l.imp != nil {
		l.sendImpaired(p)
		return
	}
	l.Delivered++
	l.eng.After(l.Delay, func() { l.Dst.Receive(p) })
}
