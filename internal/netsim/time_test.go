package netsim

import (
	"testing"
	"testing/quick"
)

func TestWrap32Truncates(t *testing.T) {
	cases := []struct {
		in   Time
		want Timestamp32
	}{
		{0, 0},
		{1, 1},
		{WrapPeriod - 1, 0xFFFFFFFF},
		{WrapPeriod, 0},
		{WrapPeriod + 7, 7},
		{3*WrapPeriod + 123, 123},
	}
	for _, c := range cases {
		if got := Wrap32(c.in); got != c.want {
			t.Errorf("Wrap32(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWrapDiffAcrossWrap(t *testing.T) {
	// earlier near the top of the counter, later just past the wrap
	earlier := Timestamp32(0xFFFFFF00)
	later := Timestamp32(0x00000100)
	if got := WrapDiff(earlier, later); got != 0x200 {
		t.Errorf("WrapDiff across wrap = %d, want %d", got, 0x200)
	}
	// NaiveDiff must get this wrong (negative), motivating the ablation.
	if got := NaiveDiff(earlier, later); got >= 0 {
		t.Errorf("NaiveDiff across wrap = %d, want negative", got)
	}
}

func TestWrapDiffPropertyMatchesTrueGap(t *testing.T) {
	// Property: for any start time and any true gap < WrapPeriod, the
	// wrap-aware difference of the truncated timestamps recovers the gap.
	f := func(start uint32, gap uint32) bool {
		t0 := Time(start)
		d := Time(gap) // gap ∈ [0, 2^32) < WrapPeriod by construction
		t1 := t0 + d
		return WrapDiff(Wrap32(t0), Wrap32(t1)) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapDiffPropertyShiftInvariant(t *testing.T) {
	// Property: WrapDiff depends only on the gap, not the absolute epoch.
	f := func(start uint64, shift uint32, gap uint32) bool {
		t0 := Time(start % (1 << 40))
		t1 := t0 + Time(gap)
		s0, s1 := t0+Time(shift), t1+Time(shift)
		return WrapDiff(Wrap32(t0), Wrap32(t1)) == WrapDiff(Wrap32(s0), Wrap32(s1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{5, "5ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeSecondsMillis(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis() = %v, want 2.5", got)
	}
}
