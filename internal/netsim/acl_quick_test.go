package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
)

// TestACLPropertyWildcardSubsumesExact: any packet matched by an
// exact rule is also matched by the same rule with fields relaxed to
// wildcards.
func TestACLPropertyWildcardSubsumesExact(t *testing.T) {
	f := func(a, b, c, d byte, sport, dport uint16, protoTCP bool) bool {
		src := netip.AddrFrom4([4]byte{a, b, c, d})
		proto := UDP
		if protoTCP {
			proto = TCP
		}
		p := &Packet{Src: src, Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}),
			SrcPort: sport, DstPort: dport, Proto: proto}

		exact := ACLRule{Src: src, Dst: p.Dst, SrcPort: sport, DstPort: dport, Proto: proto}
		relaxed := ACLRule{Src: src}
		var e, r ACL
		e.Install(exact)
		r.Install(relaxed)
		if !e.Match(p, 0) {
			return false
		}
		return r.Match(p, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestACLPropertyExpiryMonotone: a rule that does not match at time t
// never matches at any later time.
func TestACLPropertyExpiryMonotone(t *testing.T) {
	f := func(expire uint32, t1, t2 uint32) bool {
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		r := ACLRule{ExpiresAt: Time(expire) + 1}
		p := &Packet{}
		m1 := r.matches(p, Time(t1))
		m2 := r.matches(p, Time(t2))
		// Once unmatched (expired), stays unmatched.
		return m1 || !m2 || t1 == t2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
