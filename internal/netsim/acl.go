package netsim

import "net/netip"

// ACLRule is one drop rule in a P4-style match-action table: each
// field matches exactly or, when zero-valued, wildcards. Expired
// rules stop matching and are reclaimed by Expire.
type ACLRule struct {
	Src       netip.Addr // invalid = wildcard
	Dst       netip.Addr
	SrcPort   uint16 // 0 = wildcard
	DstPort   uint16
	Proto     Proto // 0 = wildcard
	ExpiresAt Time  // 0 = never expires
}

// matches reports whether p falls under the rule at time now.
func (r *ACLRule) matches(p *Packet, now Time) bool {
	if r.ExpiresAt != 0 && now >= r.ExpiresAt {
		return false
	}
	if r.Src.IsValid() && p.Src != r.Src {
		return false
	}
	if r.Dst.IsValid() && p.Dst != r.Dst {
		return false
	}
	if r.SrcPort != 0 && p.SrcPort != r.SrcPort {
		return false
	}
	if r.DstPort != 0 && p.DstPort != r.DstPort {
		return false
	}
	if r.Proto != 0 && p.Proto != r.Proto {
		return false
	}
	return true
}

// ACL is the drop table a controller installs mitigation rules into —
// the switch-side half of the flow-rule generation loop the paper
// lists as future work. First match wins; evaluation is linear, as in
// a TCAM priority list.
type ACL struct {
	rules []ACLRule

	// Stats
	Installed int
	Hits      int
}

// Install adds a rule.
func (a *ACL) Install(r ACLRule) {
	a.rules = append(a.rules, r)
	a.Installed++
}

// Len returns the number of resident rules (including expired ones
// not yet reclaimed).
func (a *ACL) Len() int { return len(a.rules) }

// Match reports whether p should be dropped at time now.
func (a *ACL) Match(p *Packet, now Time) bool {
	for i := range a.rules {
		if a.rules[i].matches(p, now) {
			a.Hits++
			return true
		}
	}
	return false
}

// Expire reclaims rules past their deadline, returning how many were
// removed.
func (a *ACL) Expire(now Time) int {
	kept := a.rules[:0]
	for _, r := range a.rules {
		if r.ExpiresAt == 0 || now < r.ExpiresAt {
			kept = append(kept, r)
		}
	}
	n := len(a.rules) - len(kept)
	a.rules = kept
	return n
}

// ACLForwarder wraps a forwarding decision with the drop table: a
// match discards the packet before it reaches an egress queue,
// exactly where a P4 ingress ACL sits.
type ACLForwarder struct {
	eng  *Engine
	ACL  *ACL
	Next Forwarder

	// Dropped counts packets discarded by the table.
	Dropped int
}

// NewACLForwarder chains an ACL ahead of next.
func NewACLForwarder(eng *Engine, next Forwarder) *ACLForwarder {
	return &ACLForwarder{eng: eng, ACL: &ACL{}, Next: next}
}

// EgressPort implements Forwarder.
func (f *ACLForwarder) EgressPort(p *Packet, ingressPort uint16) int {
	if p.Payload == nil && f.ACL.Match(p, f.eng.Now()) {
		f.Dropped++
		return -1
	}
	if f.Next == nil {
		return -1
	}
	return f.Next.EgressPort(p, ingressPort)
}
