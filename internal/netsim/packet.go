package netsim

import (
	"fmt"
	"net/netip"
)

// Proto identifies the transport protocol of a packet. Values follow
// the IANA protocol numbers so traces serialize compatibly.
type Proto uint8

// Transport protocols used by the workloads in the paper.
const (
	TCP  Proto = 6
	UDP  Proto = 17
	ICMP Proto = 1
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	case ICMP:
		return "ICMP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the bitfield of TCP control flags carried by a packet.
type TCPFlags uint8

// TCP flag bits, matching the on-the-wire ordering.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders set flags in the conventional order, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	if f == 0 {
		return "-"
	}
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if f.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	return out
}

// HopRecord is the ground-truth per-hop forwarding record the
// simulator attaches as a packet transits a switch. The telemetry
// layer selects and encodes these into INT metadata; the sFlow layer
// ignores them (sFlow samples only header fields).
type HopRecord struct {
	SwitchID    uint32
	IngressPort uint16
	EgressPort  uint16
	IngressTime Time // full-resolution arrival at the switch
	EgressTime  Time // full-resolution departure from the egress queue
	QueueDepth  int  // packets in the egress queue when this packet was dequeued
	QueueBytes  int  // bytes in the egress queue when this packet was dequeued
}

// HopLatency returns the switch residence time for this hop.
func (h HopRecord) HopLatency() Time { return h.EgressTime - h.IngressTime }

// Packet is a simulated network packet. Only header-level information
// is modelled; payload bytes are represented by Length alone, which is
// all the paper's feature set consumes.
type Packet struct {
	ID      uint64
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   Proto
	Flags   TCPFlags // meaningful only when Proto == TCP
	Length  int      // total packet length in bytes, headers included

	// SentAt is when the originating host emitted the packet.
	SentAt Time
	// DeliveredAt is when the destination host received it; zero until
	// delivery, and remains zero if the packet was dropped.
	DeliveredAt Time
	// Dropped marks a packet discarded by a full queue.
	Dropped bool

	// INTEnabled marks packets selected for telemetry by the INT
	// source switch. The sink strips metadata before final delivery,
	// mirroring a hardware deployment.
	INTEnabled bool
	// Hops accumulates per-switch forwarding records in path order.
	Hops []HopRecord

	// Payload carries opaque bytes for control-plane datagrams such as
	// sink→collector telemetry reports. Data-plane packets leave it
	// nil; their size is modelled by Length alone.
	Payload []byte

	// Aux carries overlay-protocol state attached by layers above the
	// simulator, e.g. the in-flight INT header and metadata stack that
	// a real network would embed in the packet.
	Aux any

	// Label carries the generator's ground truth: true for attack
	// traffic. It is never visible to the detection pipeline; it is
	// used only for training labels and accuracy accounting.
	Label bool
	// AttackType names the generating workload ("benign", "synflood",
	// ...); used for per-attack-type result breakdowns (Table VI).
	AttackType string
}

// FiveTuple returns the flow identity of the packet in canonical
// string form. The paper defines Flow ID as the 5-tuple {src IP, dst
// IP, src port, dst port, protocol}.
func (p *Packet) FiveTuple() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", p.Src, p.SrcPort, p.Dst, p.DstPort, p.Proto)
}

// LastHop returns the most recent hop record and true, or a zero
// record and false if the packet has not transited a switch.
func (p *Packet) LastHop() (HopRecord, bool) {
	if len(p.Hops) == 0 {
		return HopRecord{}, false
	}
	return p.Hops[len(p.Hops)-1], true
}
