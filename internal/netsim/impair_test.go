package netsim

import (
	"testing"
)

// collectTap records delivery order and times.
type collectTap struct {
	eng   *Engine
	ids   []uint64
	times []Time
}

func (t *collectTap) Receive(p *Packet) {
	t.ids = append(t.ids, p.ID)
	t.times = append(t.times, t.eng.Now())
}

func sendN(eng *Engine, l *Link, n int) {
	for i := 0; i < n; i++ {
		id := eng.NextPacketID()
		eng.Schedule(Time(i)*Microsecond, func() {
			l.Send(&Packet{ID: id, Length: 100})
		})
	}
	eng.Run()
}

func TestImpairmentZeroIsInert(t *testing.T) {
	run := func(attach bool) []Time {
		eng := NewEngine()
		tap := &collectTap{eng: eng}
		l := NewLink(eng, Microsecond, tap)
		if attach {
			l.SetImpairment(Impairment{}) // zero: must detach, not alter
		}
		sendN(eng, l, 50)
		if l.Impaired() {
			t.Fatalf("zero impairment left the link impaired")
		}
		return tap.times
	}
	plain, zeroed := run(false), run(true)
	if len(plain) != len(zeroed) {
		t.Fatalf("delivery counts differ: %d vs %d", len(plain), len(zeroed))
	}
	for i := range plain {
		if plain[i] != zeroed[i] {
			t.Fatalf("delivery %d at %v with zero impairment, %v without", i, zeroed[i], plain[i])
		}
	}
}

func TestImpairmentDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) ([]uint64, ImpairStats) {
		eng := NewEngine()
		tap := &collectTap{eng: eng}
		l := NewLink(eng, Microsecond, tap)
		l.SetImpairment(Impairment{
			Delay: 2 * Microsecond, Jitter: 5 * Microsecond,
			Loss: 0.1, Dup: 0.05, ReorderP: 0.2, Seed: seed,
		})
		sendN(eng, l, 400)
		return tap.ids, *l.ImpairStats()
	}
	idsA, statsA := run(7)
	idsB, statsB := run(7)
	if len(idsA) != len(idsB) || statsA != statsB {
		t.Fatalf("same seed diverged: %+v vs %+v", statsA, statsB)
	}
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("delivery order diverged at %d: %d vs %d", i, idsA[i], idsB[i])
		}
	}
	idsC, _ := run(8)
	same := len(idsA) == len(idsC)
	if same {
		for i := range idsA {
			if idsA[i] != idsC[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestImpairmentLossDupLedger(t *testing.T) {
	eng := NewEngine()
	tap := &collectTap{eng: eng}
	l := NewLink(eng, Microsecond, tap)
	l.SetImpairment(Impairment{Loss: 0.25, Dup: 0.1, Seed: 3})
	const n = 2000
	sendN(eng, l, n)
	st := l.ImpairStats()
	if st.Sent != n {
		t.Fatalf("Sent = %d, want %d", st.Sent, n)
	}
	if st.Lost == 0 || st.Duplicated == 0 {
		t.Fatalf("expected losses and duplicates at p=0.25/0.1: %+v", st)
	}
	if !st.Closed() {
		t.Fatalf("ledger not closed: %+v", st)
	}
	if got := len(tap.ids); got != st.Delivered {
		t.Fatalf("tap saw %d deliveries, ledger says %d", got, st.Delivered)
	}
	if st.Delivered != l.Delivered {
		t.Fatalf("Link.Delivered %d != stats.Delivered %d", l.Delivered, st.Delivered)
	}
}

func TestImpairmentReorders(t *testing.T) {
	eng := NewEngine()
	tap := &collectTap{eng: eng}
	l := NewLink(eng, Microsecond, tap)
	// Large fixed delay with an explicit reorder knob: reordered
	// packets skip the delay and must overtake their predecessors.
	l.SetImpairment(Impairment{Delay: 50 * Microsecond, ReorderP: 0.2, Seed: 11})
	sendN(eng, l, 300)
	st := l.ImpairStats()
	if st.Reordered == 0 {
		t.Fatalf("no packets took the reorder fast path: %+v", st)
	}
	inversions := 0
	for i := 1; i < len(tap.ids); i++ {
		if tap.ids[i] < tap.ids[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("reorder knob produced no out-of-order deliveries (%d fast-pathed)", st.Reordered)
	}
}

func TestImpairmentJitterAloneReorders(t *testing.T) {
	eng := NewEngine()
	tap := &collectTap{eng: eng}
	l := NewLink(eng, Microsecond, tap)
	// Jitter much larger than the 1µs inter-departure gap: reordering
	// emerges without the explicit knob.
	l.SetImpairment(Impairment{Jitter: 20 * Microsecond, Seed: 5})
	sendN(eng, l, 300)
	inversions := 0
	for i := 1; i < len(tap.ids); i++ {
		if tap.ids[i] < tap.ids[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatalf("20µs jitter over 1µs gaps produced no reordering")
	}
}

func TestImpairmentRateCapBoundedQueue(t *testing.T) {
	eng := NewEngine()
	tap := &collectTap{eng: eng}
	l := NewLink(eng, Microsecond, tap)
	// 100-byte packets at 1 µs spacing need 800 Mbit/s; cap at 8 Mbit/s
	// with a 4-packet bound so the queue overflows quickly.
	l.SetImpairment(Impairment{RateBps: 8_000_000, Limit: 4, Seed: 1})
	sendN(eng, l, 100)
	st := l.ImpairStats()
	if st.RateDropped == 0 {
		t.Fatalf("saturated rate cap dropped nothing: %+v", st)
	}
	if !st.Closed() {
		t.Fatalf("ledger not closed: %+v", st)
	}
	// Deliveries must be paced at the serialization time (100 B at
	// 8 Mbit/s = 100 µs per packet), never faster.
	for i := 1; i < len(tap.times); i++ {
		if gap := tap.times[i] - tap.times[i-1]; gap < 100*Microsecond {
			t.Fatalf("deliveries %d µs apart, rate cap allows 100 µs minimum", gap/Microsecond)
		}
	}
}
