// Package netsim implements a deterministic discrete-event network
// simulator: a virtual clock, packets, links with bandwidth and
// propagation delay, and output-queued switches that record per-hop
// ingress/egress timestamps and queue occupancy.
//
// The simulator stands in for the AmLight testbed hardware (Edgecore
// Wedge DCS800 Tofino switch, 100 Gbps hosts) used in the paper. It
// produces the exact per-hop quantities the paper's INT deployment
// exports — ingress time, egress time, and queue depth at dequeue —
// from a real queueing process, so the telemetry, feature-extraction,
// and detection layers above it exercise the same code paths they
// would against hardware.
package netsim

import "fmt"

// Time is a virtual simulation time in nanoseconds since the start of
// the simulation. It is 64-bit and never wraps; the 32-bit wrapping
// timestamps that INT hardware exports are modelled by Timestamp32.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns the time as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Timestamp32 is the 32-bit nanosecond timestamp exported by INT
// hardware. It wraps every 2^32 ns ≈ 4.295 s, which the paper (§V)
// identifies as a challenge for computing inter-arrival times.
type Timestamp32 uint32

// Wrap32 truncates a full simulation time to the 32-bit hardware
// timestamp domain.
func Wrap32(t Time) Timestamp32 { return Timestamp32(uint64(t) & 0xFFFFFFFF) }

// WrapPeriod is the period after which a Timestamp32 repeats.
const WrapPeriod Time = 1 << 32 // ≈ 4.295 s

// WrapDiff returns the elapsed nanoseconds from earlier to later,
// assuming the true gap is less than one wrap period (~4.295 s). This
// is the wrap-aware subtraction the paper's discussion of the 32-bit
// timestamp limitation calls for: a naive `later - earlier` on the
// unsigned values is wrong whenever the counter wrapped in between.
func WrapDiff(earlier, later Timestamp32) Time {
	return Time(uint32(later) - uint32(earlier))
}

// NaiveDiff returns the signed difference without wrap handling. It is
// retained only for the ablation benchmark contrasting wrap-aware and
// naive inter-arrival computation.
func NaiveDiff(earlier, later Timestamp32) Time {
	return Time(int64(later) - int64(earlier))
}
