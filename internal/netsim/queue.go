package netsim

// OutputQueue models a switch egress port: a FIFO with bounded
// capacity drained at a fixed line rate. Queue depth at dequeue time
// is what Tofino-style INT exports as "queue occupancy", and is the
// quantity the paper's feature set uses.
type OutputQueue struct {
	eng *Engine

	// RateBps is the drain rate in bits per second.
	RateBps int64
	// CapPackets bounds the queue length; packets arriving when the
	// queue is full are dropped (tail drop).
	CapPackets int

	fifo      []*Packet
	bytes     int
	busyUntil Time // when the in-flight packet finishes serialization

	// OnDequeue is invoked when a packet finishes transmission, with
	// the depth (packets) and bytes remaining in the queue at the
	// moment the packet was removed.
	OnDequeue func(p *Packet, depthPkts, depthBytes int)
	// OnDrop is invoked when a packet is tail-dropped. Optional.
	OnDrop func(p *Packet)

	// Stats
	Enqueued int
	Dequeued int
	Drops    int
	MaxDepth int
}

// NewOutputQueue constructs a queue drained at rateBps with a bound of
// capPackets packets.
func NewOutputQueue(eng *Engine, rateBps int64, capPackets int) *OutputQueue {
	return &OutputQueue{eng: eng, RateBps: rateBps, CapPackets: capPackets}
}

// Len returns the number of packets currently queued (including the
// one being serialized).
func (q *OutputQueue) Len() int { return len(q.fifo) }

// Bytes returns the bytes currently queued.
func (q *OutputQueue) Bytes() int { return q.bytes }

// serializationDelay is the time to clock p onto the wire.
func (q *OutputQueue) serializationDelay(p *Packet) Time {
	bits := int64(p.Length) * 8
	return Time(bits * int64(Second) / q.RateBps)
}

// Enqueue adds a packet to the queue, dropping it if the queue is
// full. It returns false on drop.
func (q *OutputQueue) Enqueue(p *Packet) bool {
	if len(q.fifo) >= q.CapPackets {
		q.Drops++
		p.Dropped = true
		if q.OnDrop != nil {
			q.OnDrop(p)
		}
		return false
	}
	q.fifo = append(q.fifo, p)
	q.bytes += p.Length
	q.Enqueued++
	if len(q.fifo) > q.MaxDepth {
		q.MaxDepth = len(q.fifo)
	}
	if len(q.fifo) == 1 {
		q.startService()
	}
	return true
}

// startService schedules completion of the head packet's
// serialization. The queue may have been idle (busyUntil in the past)
// or this may chain from a previous completion.
func (q *OutputQueue) startService() {
	head := q.fifo[0]
	start := q.eng.Now()
	if q.busyUntil > start {
		start = q.busyUntil
	}
	done := start + q.serializationDelay(head)
	q.busyUntil = done
	q.eng.Schedule(done, q.completeService)
}

// completeService removes the head packet and reports occupancy at
// dequeue, then begins serving the next packet if any.
func (q *OutputQueue) completeService() {
	head := q.fifo[0]
	copy(q.fifo, q.fifo[1:])
	q.fifo[len(q.fifo)-1] = nil
	q.fifo = q.fifo[:len(q.fifo)-1]
	q.bytes -= head.Length
	q.Dequeued++
	if q.OnDequeue != nil {
		q.OnDequeue(head, len(q.fifo), q.bytes)
	}
	if len(q.fifo) > 0 {
		q.startService()
	}
}
