package netsim

import "net/netip"

// Host is a traffic endpoint: it emits packets onto an attached wire
// and records the packets it receives. It stands in for the testbed's
// source and target agents.
type Host struct {
	eng  *Engine
	Addr netip.Addr
	Name string

	// Uplink carries transmitted packets toward the network; set with
	// Attach before sending.
	Uplink *Link

	// OnReceive, if set, observes every delivered packet.
	OnReceive func(p *Packet)

	// Stats
	Sent     int
	Received int
	SentB    int64
	RecvB    int64
}

// NewHost constructs a named host with the given address.
func NewHost(eng *Engine, name string, addr netip.Addr) *Host {
	return &Host{eng: eng, Name: name, Addr: addr}
}

// Attach connects the host's uplink to dst (typically a switch port)
// with the given propagation delay.
func (h *Host) Attach(delay Time, dst Receiver) {
	h.Uplink = NewLink(h.eng, delay, dst)
}

// Send stamps and transmits a packet at the current virtual time. The
// packet's Src is filled from the host address if unset, and a fresh
// ID is assigned if the packet has none.
func (h *Host) Send(p *Packet) {
	if h.Uplink == nil {
		panic("netsim: host " + h.Name + " sending with no uplink")
	}
	if !p.Src.IsValid() {
		p.Src = h.Addr
	}
	if p.ID == 0 {
		p.ID = h.eng.NextPacketID()
	}
	p.SentAt = h.eng.Now()
	h.Sent++
	h.SentB += int64(p.Length)
	h.Uplink.Send(p)
}

// SendAt schedules a packet transmission at absolute virtual time at.
func (h *Host) SendAt(at Time, p *Packet) {
	h.eng.Schedule(at, func() { h.Send(p) })
}

// Receive implements Receiver.
func (h *Host) Receive(p *Packet) {
	p.DeliveredAt = h.eng.Now()
	h.Received++
	h.RecvB += int64(p.Length)
	if h.OnReceive != nil {
		h.OnReceive(p)
	}
}
