package netsim

import (
	"net/netip"
	"testing"
)

func mkPacket(id uint64, length int) *Packet {
	return &Packet{
		ID:     id,
		Src:    netip.MustParseAddr("10.0.0.1"),
		Dst:    netip.MustParseAddr("10.0.0.2"),
		Proto:  TCP,
		Length: length,
	}
}

func TestQueueServesFIFO(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16) // 1 Gbps
	var served []uint64
	q.OnDequeue = func(p *Packet, _, _ int) { served = append(served, p.ID) }
	for i := uint64(1); i <= 5; i++ {
		q.Enqueue(mkPacket(i, 1000))
	}
	eng.Run()
	for i, id := range served {
		if id != uint64(i+1) {
			t.Fatalf("served order %v, want 1..5", served)
		}
	}
	if q.Dequeued != 5 || q.Enqueued != 5 {
		t.Errorf("stats enq=%d deq=%d, want 5/5", q.Enqueued, q.Dequeued)
	}
}

func TestQueueSerializationDelay(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16)
	var doneAt Time
	q.OnDequeue = func(p *Packet, _, _ int) { doneAt = eng.Now() }
	// 1000 bytes at 1 Gbps = 8000 bits / 1e9 bps = 8 µs
	q.Enqueue(mkPacket(1, 1000))
	eng.Run()
	if doneAt != 8*Microsecond {
		t.Errorf("serialization finished at %v, want 8µs", doneAt)
	}
}

func TestQueueBackToBackServiceTimes(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16)
	var times []Time
	q.OnDequeue = func(p *Packet, _, _ int) { times = append(times, eng.Now()) }
	q.Enqueue(mkPacket(1, 1000))
	q.Enqueue(mkPacket(2, 500))
	eng.Run()
	if times[0] != 8*Microsecond {
		t.Errorf("first pkt done at %v, want 8µs", times[0])
	}
	if times[1] != 12*Microsecond {
		t.Errorf("second pkt done at %v, want 12µs (chained)", times[1])
	}
}

func TestQueueOccupancyAtDequeue(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16)
	var depths []int
	q.OnDequeue = func(p *Packet, depth, _ int) { depths = append(depths, depth) }
	for i := uint64(1); i <= 4; i++ {
		q.Enqueue(mkPacket(i, 1000))
	}
	eng.Run()
	// Four back-to-back packets: when pkt 1 is dequeued, 3 remain; etc.
	want := []int{3, 2, 1, 0}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
}

func TestQueueTailDrop(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 2)
	dropped := 0
	q.OnDrop = func(p *Packet) {
		dropped++
		if !p.Dropped {
			t.Error("dropped packet not marked Dropped")
		}
	}
	for i := uint64(1); i <= 5; i++ {
		q.Enqueue(mkPacket(i, 1000))
	}
	if q.Drops != 3 || dropped != 3 {
		t.Errorf("drops = %d (cb %d), want 3", q.Drops, dropped)
	}
	eng.Run()
	if q.Dequeued != 2 {
		t.Errorf("dequeued = %d, want 2", q.Dequeued)
	}
}

func TestQueueBytesAccounting(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16)
	q.Enqueue(mkPacket(1, 700))
	q.Enqueue(mkPacket(2, 300))
	if q.Bytes() != 1000 {
		t.Errorf("Bytes() = %d, want 1000", q.Bytes())
	}
	eng.Run()
	if q.Bytes() != 0 || q.Len() != 0 {
		t.Errorf("after drain Bytes=%d Len=%d, want 0/0", q.Bytes(), q.Len())
	}
}

func TestQueueMaxDepthStat(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16)
	for i := uint64(1); i <= 7; i++ {
		q.Enqueue(mkPacket(i, 100))
	}
	if q.MaxDepth != 7 {
		t.Errorf("MaxDepth = %d, want 7", q.MaxDepth)
	}
	eng.Run()
}

func TestQueueIdleThenBusyAgain(t *testing.T) {
	eng := NewEngine()
	q := NewOutputQueue(eng, 1_000_000_000, 16)
	var times []Time
	q.OnDequeue = func(p *Packet, _, _ int) { times = append(times, eng.Now()) }
	q.Enqueue(mkPacket(1, 1000))
	// Second packet arrives after the queue has gone idle.
	eng.Schedule(20*Microsecond, func() { q.Enqueue(mkPacket(2, 1000)) })
	eng.Run()
	if times[0] != 8*Microsecond {
		t.Errorf("pkt1 done at %v, want 8µs", times[0])
	}
	if times[1] != 28*Microsecond {
		t.Errorf("pkt2 done at %v, want 28µs (fresh service after idle)", times[1])
	}
}
