package netsim

import "math/rand"

// Impairment parameterizes netem-style adverse-network behavior on a
// Link: added delay with uniform jitter, an explicit reorder knob,
// probabilistic loss and duplication, and a rate cap with a bounded
// queue. The zero value impairs nothing, and a link with no
// impairment attached takes the exact legacy delivery path — the
// golden tables pin that a disabled impairment is bit-identical.
//
// Semantics follow tc/netem (the grammar pumba drives):
//
//   - Delay is added to the link's propagation delay on every packet.
//   - Jitter adds a uniform sample in [0, Jitter] on top of Delay.
//   - ReorderP is the probability a packet skips Delay+Jitter and is
//     delivered after the propagation delay alone — netem's "send
//     immediately" reordering, where the fast packet overtakes its
//     delayed predecessors. Reorder also emerges from jitter whenever
//     two samples differ by more than the inter-departure gap.
//   - Loss drops a packet before it enters the wire.
//   - Dup delivers a second copy, which runs through the same
//     delay/jitter pipeline with its own samples.
//   - RateBps caps link throughput by modeling serialization delay
//     through a bounded FIFO of Limit packets; arrivals beyond the
//     bound are tail-dropped.
//
// All randomness comes from one seeded stream drawn in engine event
// order, so a run is deterministic under (topology, workload, seed).
type Impairment struct {
	Delay    Time
	Jitter   Time
	ReorderP float64
	Loss     float64
	Dup      float64
	RateBps  int64
	// Limit bounds the rate-cap queue in packets (default 64; only
	// meaningful when RateBps > 0).
	Limit int
	// Seed drives the impairment's random stream.
	Seed int64
}

// Zero reports whether the impairment changes nothing.
func (im Impairment) Zero() bool {
	return im.Delay == 0 && im.Jitter == 0 && im.ReorderP == 0 &&
		im.Loss == 0 && im.Dup == 0 && im.RateBps == 0
}

// ImpairStats is the impaired link's delivery ledger. The closure
// invariant — every offered packet is delivered, lost, or
// rate-dropped, with duplication adding extra deliveries — is
//
//	Delivered == Sent - Lost - RateDropped + Duplicated
//
// and is what the experiment sweeps assert per run.
type ImpairStats struct {
	// Sent counts packets offered to the link.
	Sent int
	// Delivered counts deliveries scheduled (duplicates count twice).
	Delivered int
	// Lost counts packets dropped by the loss probability.
	Lost int
	// Duplicated counts extra copies delivered.
	Duplicated int
	// Reordered counts packets that took the reorder fast path
	// (skipped the impairment delay, overtaking delayed traffic).
	Reordered int
	// RateDropped counts tail drops at the full rate-cap queue.
	RateDropped int
}

// Closed reports whether the delivery ledger balances.
func (s ImpairStats) Closed() bool {
	return s.Delivered == s.Sent-s.Lost-s.RateDropped+s.Duplicated
}

// impairState is the runtime attached to a Link by SetImpairment.
type impairState struct {
	Impairment
	rng       *rand.Rand
	busyUntil Time // rate cap: when the last queued packet clears the wire
	queued    int  // rate cap: packets awaiting serialization
	stats     ImpairStats
}

func (st *impairState) limit() int {
	if st.Limit > 0 {
		return st.Limit
	}
	return 64
}

// SetImpairment attaches (or, with a zero impairment, detaches) an
// adverse-network model to the link. Call before traffic flows.
func (l *Link) SetImpairment(im Impairment) {
	if im.Zero() {
		l.imp = nil
		return
	}
	l.imp = &impairState{Impairment: im, rng: NewRNG(im.Seed)}
}

// Impaired reports whether an impairment is attached.
func (l *Link) Impaired() bool { return l.imp != nil }

// ImpairStats returns the impaired link's delivery ledger, or nil
// when no impairment is attached.
func (l *Link) ImpairStats() *ImpairStats {
	if l.imp == nil {
		return nil
	}
	return &l.imp.stats
}

// sendImpaired is the adverse-network delivery path: loss, then the
// delay/jitter/reorder/rate pipeline, then an optional duplicate copy
// through the same pipeline.
func (l *Link) sendImpaired(p *Packet) {
	st := l.imp
	st.stats.Sent++
	if st.Loss > 0 && st.rng.Float64() < st.Loss {
		st.stats.Lost++
		p.Dropped = true
		return
	}
	l.transmitImpaired(p, st)
	if st.Dup > 0 && st.rng.Float64() < st.Dup {
		// A duplicated datagram carries the same bytes; the copy
		// shares Payload and Hops (receivers decode fresh state) but
		// has its own delivery bookkeeping.
		dup := *p
		st.stats.Duplicated++
		l.transmitImpaired(&dup, st)
	}
}

// transmitImpaired schedules one delivery through the rate cap and
// the delay/jitter/reorder pipeline.
func (l *Link) transmitImpaired(p *Packet, st *impairState) {
	var depart Time // wait before the packet enters the wire
	if st.RateBps > 0 {
		if st.queued >= st.limit() {
			st.stats.RateDropped++
			p.Dropped = true
			return
		}
		now := l.eng.Now()
		start := now
		if st.busyUntil > start {
			start = st.busyUntil
		}
		bits := int64(p.Length) * 8
		st.busyUntil = start + Time(bits*int64(Second)/st.RateBps)
		st.queued++
		depart = st.busyUntil - now
		l.eng.Schedule(st.busyUntil, func() { st.queued-- })
	}
	extra := st.Delay
	if st.Jitter > 0 {
		extra += Time(st.rng.Int63n(int64(st.Jitter) + 1))
	}
	if st.ReorderP > 0 && extra > 0 && st.rng.Float64() < st.ReorderP {
		// netem-style reorder: skip the impairment delay so this
		// packet overtakes in-flight delayed traffic.
		extra = 0
		st.stats.Reordered++
	}
	st.stats.Delivered++
	l.Delivered++
	l.eng.After(depart+l.Delay+extra, func() { l.Dst.Receive(p) })
}
