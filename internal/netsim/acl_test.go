package netsim

import (
	"net/netip"
	"testing"
)

func aclPkt(src string, sport uint16) *Packet {
	return &Packet{
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: sport, DstPort: 80, Proto: TCP, Length: 100,
	}
}

func TestACLExactMatch(t *testing.T) {
	var a ACL
	a.Install(ACLRule{
		Src: netip.MustParseAddr("203.0.113.77"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 5, DstPort: 80, Proto: TCP,
	})
	if !a.Match(aclPkt("203.0.113.77", 5), 0) {
		t.Error("exact rule did not match")
	}
	if a.Match(aclPkt("203.0.113.77", 6), 0) {
		t.Error("different sport matched")
	}
	if a.Match(aclPkt("203.0.113.78", 5), 0) {
		t.Error("different src matched")
	}
	if a.Hits != 1 {
		t.Errorf("hits = %d", a.Hits)
	}
}

func TestACLSourceWildcard(t *testing.T) {
	var a ACL
	a.Install(ACLRule{Src: netip.MustParseAddr("203.0.113.77")})
	for _, sport := range []uint16{1, 999, 40000} {
		if !a.Match(aclPkt("203.0.113.77", sport), 0) {
			t.Errorf("source rule missed sport %d", sport)
		}
	}
	if a.Match(aclPkt("10.9.9.9", 1), 0) {
		t.Error("other source matched")
	}
}

func TestACLExpiry(t *testing.T) {
	var a ACL
	a.Install(ACLRule{Src: netip.MustParseAddr("203.0.113.77"), ExpiresAt: 100})
	if !a.Match(aclPkt("203.0.113.77", 1), 50) {
		t.Error("live rule missed")
	}
	if a.Match(aclPkt("203.0.113.77", 1), 100) {
		t.Error("expired rule matched")
	}
	if n := a.Expire(100); n != 1 {
		t.Errorf("expired %d, want 1", n)
	}
	if a.Len() != 0 {
		t.Errorf("len = %d after expire", a.Len())
	}
}

func TestACLForwarderDropsInDataPlane(t *testing.T) {
	eng := NewEngine()
	a := NewHost(eng, "a", netip.MustParseAddr("10.0.0.1"))
	b := NewHost(eng, "b", netip.MustParseAddr("10.0.0.2"))
	sw := NewSwitch(eng, DefaultSwitchConfig(1))
	base := NewStaticForwarder()
	base.ByDst[b.Addr] = 2
	aclFwd := NewACLForwarder(eng, base)
	sw.Forwarder = aclFwd
	a.Attach(0, sw.Port(1))
	sw.Connect(2, 0, b)

	// Pre-rule traffic passes.
	a.Send(&Packet{Dst: b.Addr, SrcPort: 7, DstPort: 80, Proto: TCP, Length: 100})
	eng.Run()
	if b.Received != 1 {
		t.Fatalf("received = %d before rule", b.Received)
	}
	// Install a source drop, then the same sender is cut off.
	aclFwd.ACL.Install(ACLRule{Src: a.Addr})
	for i := 0; i < 5; i++ {
		a.Send(&Packet{Dst: b.Addr, SrcPort: uint16(10 + i), DstPort: 80, Proto: TCP, Length: 100})
	}
	eng.Run()
	if b.Received != 1 {
		t.Errorf("received = %d after rule, want still 1", b.Received)
	}
	if aclFwd.Dropped != 5 {
		t.Errorf("dropped = %d, want 5", aclFwd.Dropped)
	}
	if sw.FwdDrops != 5 {
		t.Errorf("switch fwd drops = %d", sw.FwdDrops)
	}
}

func TestACLForwarderIgnoresControlDatagrams(t *testing.T) {
	eng := NewEngine()
	var a ACL
	a.Install(ACLRule{}) // match-everything rule
	f := &ACLForwarder{eng: eng, ACL: &a, Next: ForwarderFunc(func(*Packet, uint16) int { return 1 })}
	report := &Packet{Payload: []byte{1, 2, 3}}
	if got := f.EgressPort(report, 1); got != 1 {
		t.Errorf("telemetry datagram dropped by ACL (port %d)", got)
	}
	data := &Packet{}
	if got := f.EgressPort(data, 1); got != -1 {
		t.Errorf("data packet passed the match-all rule (port %d)", got)
	}
}
