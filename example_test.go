package intddos_test

import (
	"fmt"
	"log"

	"github.com/amlight/intddos"
)

// Example demonstrates the shortest path from nothing to a trained
// DDoS detector: generate a monitored capture, train Random Forest on
// the INT feature rows, and score it.
func Example() {
	capture, err := intddos.Collect(intddos.DataConfig{Scale: intddos.ScaleTiny, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	train, test := capture.INT.Split(0.1, 42)
	res, err := intddos.TrainEval(intddos.StageOneModels()[0], train, test, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("features=%d accuracy=%.2f\n", capture.INT.Features(), res.Scores.Accuracy)
	// Output: features=15 accuracy=1.00
}

// ExamplePaperSchedule shows the Table I episode layout on a
// compressed timeline.
func ExamplePaperSchedule() {
	sched := intddos.PaperSchedule(intddos.Second, 10*intddos.Millisecond)
	counts := map[string]int{}
	for _, ep := range sched {
		counts[ep.Type]++
	}
	fmt.Println(len(sched), counts[intddos.SYNFlood], counts[intddos.SlowLoris])
	// Output: 11 5 2
}

// ExampleRunTableII prints the feature-availability comparison that
// motivates the INT-versus-sFlow study.
func ExampleRunTableII() {
	missing := 0
	for _, row := range intddos.RunTableII() {
		if !row.SFlow {
			missing++
			fmt.Println(row.Feature)
		}
	}
	fmt.Println(missing, "families unavailable from sFlow")
	// Output:
	// Queue Occupancy*
	// Hop Latency*
	// 2 families unavailable from sFlow
}

// ExampleNewMicroburstDetector finds queue-buildup events in a
// replayed capture — the telemetry substrate's original AmLight use
// case.
func ExampleNewMicroburstDetector() {
	w := intddos.BuildWorkload(intddos.ScaleTiny, 42)
	tb := intddos.NewTestbed(intddos.TestbedConfig{})
	det := intddos.NewMicroburstDetector(8, 2*intddos.Millisecond)
	tb.Collector.OnReport = det.Observe
	rp := tb.Replayer(w.Records)
	rp.Start()
	tb.Run()
	det.Flush()
	fmt.Println(len(det.Bursts) > 0)
	// Output: true
}
