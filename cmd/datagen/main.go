// Command datagen generates the synthetic AmLight-style capture —
// benign web traffic plus the Table I attack episodes — and writes it
// as an .amtr trace, or inspects an existing trace.
//
// Usage:
//
//	datagen -out capture.amtr [-scale small] [-seed 42]
//	datagen -inspect capture.amtr
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/amlight/intddos"
)

func main() {
	out := flag.String("out", "", "write a generated trace to this path")
	inspect := flag.String("inspect", "", "print statistics for an existing trace")
	features := flag.String("features", "", "collect INT telemetry and write the per-packet feature dataset as CSV to this path")
	scale := flag.String("scale", intddos.ScaleSmall, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	switch {
	case *inspect != "":
		inspectTrace(*inspect)
	case *features != "":
		exportFeatures(*features, *scale, *seed)
	case *out != "":
		w := intddos.BuildWorkload(*scale, *seed)
		if err := intddos.WriteTrace(*out, w.Records); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records (%s scale, seed %d) to %s\n", len(w.Records), *scale, *seed, *out)
		fmt.Println("attack schedule:")
		for _, ep := range w.Schedule {
			fmt.Printf("  %v\n", ep)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// exportFeatures replays a workload through the testbed and writes
// the INT feature dataset for external ML tooling.
func exportFeatures(path, scale string, seed int64) {
	c, err := intddos.Collect(intddos.DataConfig{Scale: scale, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := intddos.WriteDatasetCSV(f, c.INT); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d feature rows (%d features) to %s\n", c.INT.Len(), c.INT.Features(), path)
}

func inspectTrace(path string) {
	recs, err := intddos.ReadTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	byType := map[string]int{}
	bytes := map[string]int64{}
	for i := range recs {
		byType[recs[i].AttackType]++
		bytes[recs[i].AttackType] += int64(recs[i].Length)
	}
	names := make([]string, 0, len(byType))
	for n := range byType {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d records", path, len(recs))
	if len(recs) > 0 {
		fmt.Printf(" spanning %v", recs[len(recs)-1].At-recs[0].At)
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("  %-10s %8d packets %12d bytes\n", n, byType[n], bytes[n])
	}
}
