// Command reproduce regenerates every table and figure of the
// paper's evaluation section on the simulated substrate and prints
// them in the paper's layout.
//
// Usage:
//
//	reproduce [-scale tiny|small|full] [-seed N] [-only table3,figure5,...]
//
// With no -only filter every artifact is produced: Tables I–VI and
// Figures 3, 4, 5, and 7, plus the episode-coverage analysis and the
// queue-feature ablation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleSmall, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "experiment seed")
	only := flag.String("only", "", "comma-separated subset: table1..table6, figure3, figure4, figure5, figure7, coverage, ablation (on request: roc, mitigation, scaling, chaos, triage, impair, soak)")
	packets := flag.Int("packets", 2500, "packets per flow type in the live (Table VI) replays")
	shards := flag.Int("shards", 0, "database shards for the live (Table VI) replays (0: the paper's single-lock store; 1 is observably identical to 0)")
	predictBatch := flag.Int("predict-batch", 0, "scoring micro-batch size for the live (Table VI) replays (0/1: the paper's record-at-a-time prediction; results are identical at any size)")
	triage := flag.Bool("triage", false, "enable tiered inference in the live (Table VI) replays: sketch triage + stage-0 early exit (off: the paper's exact pipeline)")
	triageThreshold := flag.Float64("triage-threshold", intddos.DefaultTriageThreshold, "stage-0 confidence |2p-1| required to early-exit a record")
	triageModel := flag.String("triage-model", "rf", "ensemble member serving cascade stage 0 (mlp, rf, or gnb; rf's calibrated probabilities gate best)")
	faultSpec := flag.String("fault-spec", "", "fault schedule for the chaos artifact (e.g. \"drop=0.05,store.err=0.1,panic=0.02\"; empty: clean baseline)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the chaos artifact's fault schedule")
	netemSpec := flag.String("netem", "", "impair the capture's links, e.g. \"netem[link=agent->collector]:loss=1%,dup=0.1%\" (empty: exact unimpaired captures)")
	netemSeed := flag.Int64("netem-seed", 0, "seed for the -netem impairment RNGs (0: the experiment seed)")
	impairOut := flag.String("impair-out", "", "also write the impairment-sweep artifact (-only impair) as JSON to this path")
	impairQuick := flag.Bool("impair-quick", false, "trim the impairment sweep to baseline + the acceptance point (CI smoke)")
	checkpointDir := flag.String("checkpoint-dir", "", "resume the chaos artifact from (and snapshot into) this checkpoint directory")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval for the chaos artifact (0: one snapshot at the end of the run)")
	checkpointFullEvery := flag.Int("checkpoint-full-every", 0, "full-snapshot cadence for the chaos artifact: every Nth checkpoint full, deltas between (0/1: every checkpoint full)")
	csvDir := flag.String("csv", "", "also write machine-readable CSVs into this directory")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	// -netem impairs every capture below; unset it stays nil and the
	// captures are byte-identical to an unimpaired run.
	netem, err := intddos.ParseNetem(*netemSpec)
	fail(err)

	fmt.Printf("# Reproduction run: scale=%s seed=%d\n\n", *scale, *seed)
	start := time.Now()

	needTables := sel("table1") || sel("table3") || sel("table4") || sel("table5") ||
		sel("figure3") || sel("figure4") || sel("ablation") || (sel("roc") && len(want) > 0)
	needCoverage := sel("figure5") || sel("coverage")

	var tablesCap, coverageCap *intddos.Capture
	if needTables {
		tablesCap, err = intddos.Collect(intddos.DataConfig{
			Scale: *scale, Seed: *seed, Netem: netem, NetemSeed: *netemSeed,
		})
		fail(err)
		fmt.Printf("capture (tables rate 1/%d): %d packets, %d INT rows, %d sFlow rows\n\n",
			tablesCap.Config.SFlowRate, len(tablesCap.Workload.Records), tablesCap.INT.Len(), tablesCap.SFlow.Len())
	}
	if needCoverage {
		coverageCap, err = intddos.Collect(intddos.DataConfig{
			Scale: *scale, Seed: *seed, SFlowRate: intddos.CoverageSFlowRate(*scale),
			Netem: netem, NetemSeed: *netemSeed,
		})
		fail(err)
	}

	if sel("table1") {
		rows := intddos.RunTableI(tablesCap)
		fmt.Println(intddos.FormatTableI(rows))
		writeCSV(*csvDir, "table1.csv", func(w io.Writer) error { return intddos.WriteTableICSV(w, rows) })
	}
	if sel("table2") {
		fmt.Println(intddos.FormatTableII(intddos.RunTableII()))
	}
	if sel("table3") || sel("figure3") || sel("figure4") {
		t3, err := intddos.RunTableIII(tablesCap, *seed)
		fail(err)
		if sel("table3") {
			fmt.Println(intddos.FormatEvalRows(
				"TABLE III: ML model performance, INT vs sFlow (90:10 split)", t3.Rows))
			writeCSV(*csvDir, "table3.csv", func(w io.Writer) error { return intddos.WriteEvalCSV(w, t3.Rows) })
		}
		if sel("figure3") {
			fmt.Println(intddos.FormatConfusion("FIGURE 3: Confusion matrix, RF on INT", t3.RFConfusionINT))
		}
		if sel("figure4") {
			fmt.Println(intddos.FormatConfusion("FIGURE 4: Confusion matrix, RF on sFlow", t3.RFConfusionSFlow))
		}
	}
	if sel("table4") {
		t4, err := intddos.RunTableIV(tablesCap, *seed)
		fail(err)
		fmt.Println(intddos.FormatEvalRows(
			"TABLE IV: Zero-day performance (train: June 6-10, test: June 11, SlowLoris unseen)", t4))
		writeCSV(*csvDir, "table4.csv", func(w io.Writer) error { return intddos.WriteEvalCSV(w, t4) })
	}
	if sel("table5") {
		t5, err := intddos.RunTableV(tablesCap, *seed)
		fail(err)
		fmt.Println(intddos.FormatTableVMatrix(t5))
		fmt.Println(intddos.FormatTableV(t5))
	}
	if sel("figure5") {
		fig, err := intddos.RunFigure5(coverageCap, 240, *seed)
		fail(err)
		fmt.Println(intddos.FormatFigure5(fig))
		writeCSV(*csvDir, "figure5.csv", func(w io.Writer) error { return intddos.WriteFigure5CSV(w, fig) })
	}
	if sel("coverage") {
		fmt.Println(intddos.FormatEpisodeCoverage(
			intddos.RunEpisodeCoverage(coverageCap), coverageCap.Config.SFlowRate))
	}
	if sel("ablation") {
		withQ, withoutQ, err := intddos.FeatureAblation(tablesCap, *seed)
		fail(err)
		fmt.Println(intddos.FormatEvalRows(
			"ABLATION: RF with vs without queue-occupancy features",
			[]intddos.EvalResult{withQ, withoutQ}))
		withH, withoutH, err := intddos.HopLatencyAblation(
			intddos.DataConfig{Scale: *scale, Seed: *seed}, *seed)
		fail(err)
		fmt.Println(intddos.FormatEvalRows(
			"ABLATION: RF with vs without the hop-latency features the paper excluded",
			[]intddos.EvalResult{withH, withoutH}))
	}
	if sel("roc") && len(want) > 0 {
		// Extension artifact; produced on request.
		rows, err := intddos.RunROC(tablesCap, *seed)
		fail(err)
		fmt.Println(intddos.FormatROC(rows))
	}
	if sel("mitigation") && len(want) > 0 {
		// Extension artifact; produced on request.
		rows, err := intddos.RunMitigation(intddos.LiveConfig{
			Scale: *scale, Seed: *seed, PacketsPerType: *packets,
		})
		fail(err)
		fmt.Println(intddos.FormatMitigation(rows))
	}
	if sel("scaling") && len(want) > 0 {
		// Not part of the default artifact set; produced on request.
		scfg := intddos.ScalingConfig{Scale: *scale, Seed: *seed}
		points, err := intddos.RunScalingStudy(scfg)
		fail(err)
		fmt.Println(intddos.FormatScaling(points, scfg))
		writeCSV(*csvDir, "scaling.csv", func(w io.Writer) error { return intddos.WriteScalingCSV(w, points) })
	}
	if sel("chaos") && len(want) > 0 {
		// Robustness artifact; produced on request. Replays the
		// workload through the wall-clock runtime under the -fault-spec
		// schedule and reports how gracefully the pipeline degraded.
		res, err := intddos.RunChaos(intddos.ChaosConfig{
			Scale: *scale, Seed: *seed, PacketsPerType: *packets,
			FaultSpec: *faultSpec, FaultSeed: *faultSeed,
			CheckpointDir: *checkpointDir, CheckpointEvery: *checkpointEvery,
			CheckpointFullEvery: *checkpointFullEvery,
		})
		fail(err)
		fmt.Println(intddos.FormatChaos(res))
	}
	if sel("impair") && len(want) > 0 {
		// Adverse-network artifact; produced on request. Re-runs the
		// Table III/IV protocols across a grid of report-wire
		// impairments and reports accuracy deltas plus per-row
		// accounting closure.
		sweep, err := intddos.RunImpairmentSweep(intddos.ImpairConfig{
			Scale: *scale, Seed: *seed, NetemSeed: *netemSeed, Quick: *impairQuick,
		})
		fail(err)
		fmt.Println(intddos.FormatImpairmentSweep(sweep))
		if *impairOut != "" {
			fail(intddos.WriteImpairJSON(*impairOut, sweep))
			fmt.Printf("impairment artifact: %s\n\n", *impairOut)
		}
	}
	if sel("soak") && len(want) > 0 {
		// Adverse-network soak; produced on request. Feeds the live
		// pipeline a multi-pass scrambled report stream materialized
		// through an impaired wire and checks both closure ledgers.
		// (The soak's wire profile is its own default; -netem shapes
		// the capture artifacts, not this run.)
		res, err := intddos.RunSoak(intddos.SoakConfig{
			Scale: *scale, Seed: *seed, NetemSeed: *netemSeed,
			FaultSpec: *faultSpec, FaultSeed: *faultSeed,
		})
		fail(err)
		fmt.Println(intddos.FormatSoak(res))
	}
	if sel("triage") && len(want) > 0 {
		// Tiered-inference artifact; produced on request. Sweeps benign
		// fraction × stage-0 threshold and reports exit rate plus the
		// accuracy delta against triage-off baselines.
		sweep, err := intddos.RunTriageSweep(intddos.TriageSweepConfig{
			Live: intddos.LiveConfig{Scale: *scale, Seed: *seed, PacketsPerType: *packets,
				Shards: *shards, PredictBatch: *predictBatch, TriageModel: strings.ToUpper(*triageModel)},
		})
		fail(err)
		fmt.Println(intddos.FormatTriageSweep(sweep))
	}
	if sel("table6") || sel("figure7") {
		live, err := intddos.RunTableVI(intddos.LiveConfig{
			Scale: *scale, Seed: *seed, PacketsPerType: *packets, Shards: *shards,
			PredictBatch: *predictBatch,
			Triage:       *triage, TriageThreshold: *triageThreshold, TriageModel: strings.ToUpper(*triageModel),
		})
		fail(err)
		if sel("table6") {
			fmt.Println(intddos.FormatTableVI(live))
			writeCSV(*csvDir, "table6.csv", func(w io.Writer) error { return intddos.WriteTableVICSV(w, live) })
		}
		if sel("table6") {
			// Table-VI companion: detection latency distribution per
			// attack type, summarized from every live decision.
			reg := intddos.NewObsRegistry()
			hv := reg.HistogramVec("intddos_predict_latency_seconds", "attack_type", intddos.LatencyBuckets())
			for typ, ds := range live.Decisions {
				h := hv.With(typ)
				for _, d := range ds {
					h.Observe(d.Latency.Seconds())
				}
			}
			fmt.Println(intddos.FormatLatencySummary(
				"TABLE VI companion: detection latency percentiles by attack type", hv.Snapshots()))
		}
		if sel("figure7") {
			fmt.Println(intddos.FormatFigure7(live, intddos.Benign, 100))
			fmt.Println(intddos.FormatFigure7(live, intddos.SlowLoris, 100))
			writeCSV(*csvDir, "figure7_benign.csv", func(w io.Writer) error {
				return intddos.WriteFigure7CSV(w, live, intddos.Benign)
			})
			writeCSV(*csvDir, "figure7_slowloris.csv", func(w io.Writer) error {
				return intddos.WriteFigure7CSV(w, live, intddos.SlowLoris)
			})
		}
	}

	fmt.Printf("# done in %.1fs\n", time.Since(start).Seconds())
}

// writeCSV writes one CSV artifact when -csv is set.
func writeCSV(dir, name string, fn func(io.Writer) error) {
	if dir == "" {
		return
	}
	fail(intddos.WriteCSVFile(dir, name, fn))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}
