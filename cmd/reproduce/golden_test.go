// Golden-file regression tests for the reproduction's text
// artifacts: each table is rendered at scale=tiny seed=42 and
// compared byte-for-byte against testdata/golden/. Run with -update
// to re-bless the files after an intentional change.
//
// The sharded store rides the same rails: TestGoldenTableVISharded
// renders Table VI with Shards=1 and requires it byte-identical to
// the legacy single-lock output — the acceptance gate that makes
// sharding a deployment substitution, not a semantic change.
package main

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/amlight/intddos"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

const (
	goldenScale   = intddos.ScaleTiny
	goldenSeed    = 42
	goldenPackets = 250
)

// goldenCapture memoizes the shared tiny capture across table tests.
var goldenCapture = sync.OnceValues(func() (*intddos.Capture, error) {
	return intddos.Collect(intddos.DataConfig{Scale: goldenScale, Seed: goldenSeed})
})

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/reproduce -run TestGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output.\n--- golden\n%s\n--- got\n%s\nRe-bless with -update if the change is intentional.",
			name, want, got)
	}
}

func TestGoldenTableI(t *testing.T) {
	c, err := goldenCapture()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.txt", intddos.FormatTableI(intddos.RunTableI(c)))
}

func TestGoldenTableII(t *testing.T) {
	checkGolden(t, "table2.txt", intddos.FormatTableII(intddos.RunTableII()))
}

func TestGoldenTableIII(t *testing.T) {
	c, err := goldenCapture()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := intddos.RunTableIII(c, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	out := intddos.FormatEvalRows("TABLE III: ML model performance, INT vs sFlow (90:10 split)", t3.Rows) +
		"\n" + intddos.FormatConfusion("FIGURE 3: Confusion matrix, RF on INT", t3.RFConfusionINT) +
		"\n" + intddos.FormatConfusion("FIGURE 4: Confusion matrix, RF on sFlow", t3.RFConfusionSFlow)
	checkGolden(t, "table3.txt", out)
}

func TestGoldenTableIV(t *testing.T) {
	c, err := goldenCapture()
	if err != nil {
		t.Fatal(err)
	}
	t4, err := intddos.RunTableIV(c, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table4.txt", intddos.FormatEvalRows(
		"TABLE IV: Zero-day performance (train: June 6-10, test: June 11, SlowLoris unseen)", t4))
}

func TestGoldenTableV(t *testing.T) {
	c, err := goldenCapture()
	if err != nil {
		t.Fatal(err)
	}
	t5, err := intddos.RunTableV(c, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table5.txt", intddos.FormatTableVMatrix(t5)+"\n"+intddos.FormatTableV(t5))
}

// tableVI renders Table VI at the golden configuration with the given
// store layout and scoring batch size.
func tableVI(t *testing.T, shards int, predictBatch ...int) string {
	t.Helper()
	cfg := intddos.LiveConfig{
		Scale: goldenScale, Seed: goldenSeed, PacketsPerType: goldenPackets, Shards: shards,
	}
	if len(predictBatch) > 0 {
		cfg.PredictBatch = predictBatch[0]
	}
	live, err := intddos.RunTableVI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return intddos.FormatTableVI(live)
}

func TestGoldenTableVI(t *testing.T) {
	checkGolden(t, "table6.txt", tableVI(t, 0))
}

// TestGoldenTableVISharded pins the bit-identity guarantee at every
// shard width: the CentralServer polls the merged global journal
// order (per-shard journals carry global ingest stamps), so the same
// experiment through a ShardedDB of any width must render Table VI
// byte-for-byte identical to the legacy single-lock store (and
// therefore to the golden file).
func TestGoldenTableVISharded(t *testing.T) {
	legacy := tableVI(t, 0)
	for _, shards := range []int{1, 4, 8} {
		if sharded := tableVI(t, shards); legacy != sharded {
			t.Errorf("Table VI differs between legacy DB and ShardedDB(%d):\n--- legacy\n%s\n--- sharded\n%s",
				shards, legacy, sharded)
		}
	}
	checkGolden(t, "table6.txt", legacy)
}

// TestGoldenTableVIBatch32 pins the batched-inference bit-identity
// guarantee: scoring the Prediction module's queue in micro-batches of
// 32 must render Table VI byte-for-byte identical to the golden file
// blessed at the paper-faithful batch size of 1. Batching amortizes
// the ensemble call but never moves a decision, a vote, or a latency.
func TestGoldenTableVIBatch32(t *testing.T) {
	checkGolden(t, "table6.txt", tableVI(t, 0, 32))
}

// TestGoldenTableVITriageInert pins the tiered-inference exact mode:
// with the cascade wired in but inert (non-positive threshold) — and
// with triage simply off — Table VI renders byte-for-byte identical
// to the golden file. Enabling the plumbing without a threshold must
// not move a single decision.
func TestGoldenTableVITriageInert(t *testing.T) {
	legacy := tableVI(t, 0)
	inert, err := intddos.RunTableVI(intddos.LiveConfig{
		Scale: goldenScale, Seed: goldenSeed, PacketsPerType: goldenPackets,
		Triage: true, TriageThreshold: -1, TriageModel: "GNB",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := intddos.FormatTableVI(inert); got != legacy {
		t.Errorf("Table VI differs with an inert cascade:\n--- legacy\n%s\n--- inert\n%s", legacy, got)
	}
	checkGolden(t, "table6.txt", legacy)
}

// triageAccuracyBound is the documented Table VI accuracy envelope:
// at the default threshold, no per-type accuracy may move more than
// this many percentage points from the exact pipeline (see
// EXPERIMENTS.md: tiered inference).
const triageAccuracyBound = 2.0

// TestGoldenTableVITriageDelta bounds the accuracy cost of tiered
// inference at the default threshold: per attack type, the triage-on
// accuracy stays within triageAccuracyBound percentage points of the
// triage-off baseline, and at least some records early-exit.
func TestGoldenTableVITriageDelta(t *testing.T) {
	baseCfg := intddos.LiveConfig{Scale: goldenScale, Seed: goldenSeed, PacketsPerType: goldenPackets}
	base, err := intddos.RunTableVI(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	onCfg := baseCfg
	onCfg.Triage = true // threshold/model resolve to the defaults
	on, err := intddos.RunTableVI(onCfg)
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := make(map[string]float64, len(base.Rows))
	for _, r := range base.Rows {
		baseAcc[r.Type] = r.Accuracy
	}
	for _, r := range on.Rows {
		delta := (r.Accuracy - baseAcc[r.Type]) * 100
		t.Logf("%-10s accuracy %.4f -> %.4f (%+.2f pp)", r.Type, baseAcc[r.Type], r.Accuracy, delta)
		if delta < -triageAccuracyBound || delta > triageAccuracyBound {
			t.Errorf("%s accuracy moved %.2f pp under triage, bound is ±%.1f pp",
				r.Type, delta, triageAccuracyBound)
		}
	}
	exited, total := 0, 0
	for _, ds := range on.Decisions {
		for _, d := range ds {
			total++
			if d.Stage > 0 {
				exited++
			}
		}
	}
	t.Logf("exit rate: %d/%d (%.1f%%)", exited, total, 100*float64(exited)/float64(total))
	if exited == 0 {
		t.Error("triage at the default threshold exited nothing — the cascade is dead weight")
	}
}

func TestGoldenLatencyCompanion(t *testing.T) {
	live, err := intddos.RunTableVI(intddos.LiveConfig{
		Scale: goldenScale, Seed: goldenSeed, PacketsPerType: goldenPackets,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := intddos.NewObsRegistry()
	hv := reg.HistogramVec("intddos_predict_latency_seconds", "attack_type", intddos.LatencyBuckets())
	for typ, ds := range live.Decisions {
		h := hv.With(typ)
		for _, d := range ds {
			h.Observe(d.Latency.Seconds())
		}
	}
	checkGolden(t, "table6_latency.txt", intddos.FormatLatencySummary(
		"TABLE VI companion: detection latency percentiles by attack type", hv.Snapshots()))
}
