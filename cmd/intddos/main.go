// Command intddos runs the automated DDoS detection mechanism live
// on the simulated Figure 6 testbed: it pre-trains the MLP+RF+GNB
// ensemble (SlowLoris held out as a zero-day attack), replays traffic
// through the INT pipeline, and streams per-flow decisions.
//
// Usage:
//
//	intddos [-scale small] [-seed 42] [-packets 2500] [-trace file.amtr] [-v]
//	intddos -live [-obs-addr :9090] [-live-for 1m] [-checkpoint-dir dir] [-diag-bundle out.tar.gz]
//	intddos -live [-netem "netem[link=agent->collector]:loss=1%,dup=0.1%"] [-dedup-window 16]
//
// With -trace the replayed traffic comes from a capture written by
// datagen instead of a generated workload. With -live the pipeline
// runs as concurrent goroutines on the wall clock (the deployment
// mode) and -obs-addr serves /metrics (Prometheus text), /healthz,
// /traces, and /debug/pprof while it does.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleSmall, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "experiment seed")
	packets := flag.Int("packets", 2500, "packets replayed per flow type")
	tracePath := flag.String("trace", "", "optional .amtr trace to replay instead of the built-in workload")
	saveBundle := flag.String("save-bundle", "", "train the ensemble and write it to this bundle file, then exit")
	bundlePath := flag.String("bundle", "", "detect over -trace using a pre-trained bundle instead of training")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /healthz, /traces and pprof on this address (e.g. :9090)")
	liveMode := flag.Bool("live", false, "run the wall-clock concurrent pipeline instead of the simulated replay")
	liveFor := flag.Duration("live-for", 0, "keep the -live replay looping for this long (0: one pass; implies looping until SIGINT when negative)")
	shards := flag.Int("shards", 0, "stripe the flow table, database, and dispatch over N shards (0: the paper's single-lock layout)")
	workers := flag.Int("workers", 0, "prediction worker goroutines for -live (0: one, like the paper's single predictor)")
	predictBatch := flag.Int("predict-batch", 0, "scoring micro-batch size (0/1: the paper's record-at-a-time prediction; results are identical at any size)")
	predictLinger := flag.Duration("predict-linger", 0, "how long a -live prediction worker waits to fill a micro-batch (0: score immediately)")
	faultSpec := flag.String("fault-spec", "", "inject faults into the -live pipeline, e.g. \"drop=0.01,store.err=0.1,panic=0.02\" (see README: fault tolerance)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	netemSpec := flag.String("netem", "", "impair the -live replay's report wire, e.g. \"netem[link=agent->collector]:loss=1%,dup=0.1%\" (see README: adverse networks)")
	netemSeed := flag.Int64("netem-seed", 0, "seed for the -netem impairment RNGs (0: the experiment seed)")
	dedupWindow := flag.Int("dedup-window", 0, "per-source dedup/reorder window for the -live pipeline (0: admit every report, the paper's behavior)")
	checkpointDir := flag.String("checkpoint-dir", "", "make -live crash-recoverable: resume from the newest checkpoint in this directory and snapshot into it")
	checkpointEvery := flag.Duration("checkpoint-every", 10*time.Second, "periodic checkpoint interval for -live (0: only the final snapshot on exit)")
	checkpointFullEvery := flag.Int("checkpoint-full-every", 16, "write a self-contained full snapshot every Nth checkpoint and incremental deltas between (0/1: every checkpoint full)")
	checkpointCompress := flag.Bool("checkpoint-compress", false, "flate-compress checkpoint sections (smaller files, more CPU outside the capture barrier)")
	diagBundle := flag.String("diag-bundle", "", "write a diagnostic bundle (tar.gz of profiles, metrics, health, config, events) to this path when the -live run ends")
	profileDir := flag.String("profile-dir", "", "capture periodic CPU/mutex/block/goroutine/heap profiles into this directory during -live")
	profileEvery := flag.Duration("profile-every", 0, "profile capture period for -profile-dir (0: 30s)")
	triage := flag.Bool("triage", false, "enable tiered inference: sketch triage + stage-0 early exit before the full ensemble (off: the paper's exact pipeline)")
	triageThreshold := flag.Float64("triage-threshold", intddos.DefaultTriageThreshold, "stage-0 confidence |2p-1| required to early-exit a record")
	triageModel := flag.String("triage-model", "rf", "ensemble member serving cascade stage 0 (mlp, rf, or gnb; rf's calibrated probabilities gate best)")
	verbose := flag.Bool("v", false, "print every decision")
	flag.Parse()

	// The observability registry is shared by whichever pipeline runs;
	// serving it costs nothing when no metrics are registered yet.
	reg := intddos.NewObsRegistry()
	if *obsAddr != "" {
		srv, err := reg.ListenAndServe(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos: obs:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability endpoints on http://%s (/metrics /healthz /traces /debug/pprof)\n", srv.Addr())
	}

	if *saveBundle != "" {
		trainAndSave(*saveBundle, *scale, *seed)
		return
	}
	if *liveMode {
		injector, err := intddos.ParseFaultSpec(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		netem, err := intddos.ParseNetem(*netemSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		nseed := *netemSeed
		if nseed == 0 {
			nseed = *seed
		}
		runLive(*scale, *seed, *packets, *liveFor, *shards, *workers, *predictBatch, *predictLinger, injector, netem, nseed, *dedupWindow, *checkpointDir, *checkpointEvery, *checkpointFullEvery, *checkpointCompress, *diagBundle, *profileDir, *profileEvery, *triage, *triageThreshold, *triageModel, reg, *verbose)
		return
	}
	if *faultSpec != "" {
		fmt.Fprintln(os.Stderr, "intddos: -fault-spec only applies to the -live pipeline")
		os.Exit(1)
	}
	if *netemSpec != "" || *dedupWindow != 0 {
		fmt.Fprintln(os.Stderr, "intddos: -netem and -dedup-window only apply to the -live pipeline")
		os.Exit(1)
	}
	if *checkpointDir != "" {
		fmt.Fprintln(os.Stderr, "intddos: -checkpoint-dir only applies to the -live pipeline")
		os.Exit(1)
	}
	if *diagBundle != "" || *profileDir != "" {
		fmt.Fprintln(os.Stderr, "intddos: -diag-bundle and -profile-dir only apply to the -live pipeline")
		os.Exit(1)
	}
	if *tracePath != "" {
		runTrace(*tracePath, *bundlePath, *seed, *verbose)
		return
	}

	live, err := intddos.RunTableVI(intddos.LiveConfig{
		Scale: *scale, Seed: *seed, PacketsPerType: *packets, Shards: *shards,
		PredictBatch: *predictBatch,
		Triage:       *triage, TriageThreshold: *triageThreshold, TriageModel: strings.ToUpper(*triageModel),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	if *verbose {
		for typ, ds := range live.Decisions {
			for _, d := range ds {
				status := "ok"
				if !d.Correct() {
					status = "MISS"
				}
				fmt.Printf("%-10s %-40s label=%d latency=%v %s\n", typ, d.Key, d.Label, d.Latency, status)
			}
		}
	}
	fmt.Print(intddos.FormatTableVI(live))
}

// runLive drives the wall-clock concurrent runtime (core.Live): it
// pre-trains an RF offline, replays the simulated sink's INT reports
// through the pipeline at wall-clock pace, and leaves the obs
// registry continuously scrapeable while doing so. A final metrics
// summary — counters, queue gauges, per-stage latency percentiles —
// is printed on exit.
func runLive(scale string, seed int64, packets int, liveFor time.Duration, shards, workers, predictBatch int, predictLinger time.Duration, injector *intddos.FaultInjector, netem intddos.NetemSpec, netemSeed int64, dedupWindow int, checkpointDir string, checkpointEvery time.Duration, checkpointFullEvery int, checkpointCompress bool, diagBundle, profileDir string, profileEvery time.Duration, triage bool, triageThreshold float64, triageModel string, reg *intddos.ObsRegistry, verbose bool) {
	capture, err := intddos.Collect(intddos.DataConfig{Scale: scale, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	train, _ := capture.INT.Split(0.1, seed)
	model, scaler, err := intddos.FitModel(intddos.StageTwoModels()[1], train.Subsample(40000, seed), seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	// Stage-0 model for -triage: train the requested member when it is
	// not the RF already serving the ensemble. Trained on the same
	// subsample, its scaler coefficients match the pipeline's.
	var stageZero intddos.Classifier
	if triage && !strings.EqualFold(triageModel, model.Name()) {
		var spec *intddos.ModelSpec
		for _, s := range intddos.StageTwoModels() {
			if strings.EqualFold(s.Name, triageModel) {
				spec = &s
				break
			}
		}
		if spec == nil {
			fmt.Fprintf(os.Stderr, "intddos: unknown -triage-model %q (want mlp, rf, or gnb)\n", triageModel)
			os.Exit(1)
		}
		stageZero, _, err = intddos.FitModel(*spec, train.Subsample(40000, seed), seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
	}

	live, err := intddos.NewLiveRuntime(intddos.LiveRuntimeConfig{
		Models:              []intddos.Classifier{model},
		Scaler:              scaler,
		Registry:            reg,
		FlowIdleTimeout:     30 * time.Second,
		Shards:              shards,
		Workers:             workers,
		PredictBatch:        predictBatch,
		PredictLinger:       predictLinger,
		Fault:               injector,
		CheckpointDir:       checkpointDir,
		CheckpointEvery:     checkpointEvery,
		CheckpointFullEvery: checkpointFullEvery,
		CheckpointCompress:  checkpointCompress,
		ProfileDir:          profileDir,
		ProfileInterval:     profileEvery,
		Triage:              triage,
		TriageThreshold:     triageThreshold,
		TriageModel:         stageZero,
		DedupWindow:         dedupWindow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	if r := live.Restore(); r != nil {
		fmt.Printf("restored from %s: seq=%d flows=%d store_flows=%d journal_pending=%d windows=%d predictions=%d\n",
			r.Path, r.Seq, r.Flows, r.StoreFlows, r.JournalPending, r.Windows, r.Predictions)
	}
	if verbose {
		live.OnDecision = func(d intddos.Decision) {
			fmt.Printf("%-40s label=%d latency=%v\n", d.Key, d.Label, time.Duration(d.Latency))
		}
	}

	// Materialize the sink's reports once; the live loop replays them.
	// -netem impairs this rig's wires, so the replayed stream carries
	// real loss/dup/reorder; unset it leaves the rig on the exact
	// unimpaired path.
	maxReports := 5 * packets
	var reports []*intddos.Report
	tb := intddos.NewTestbed(intddos.TestbedConfig{Netem: netem, NetemSeed: netemSeed})
	tb.Collector.OnReport = func(r *intddos.Report, _ intddos.Time) {
		if len(reports) < maxReports {
			reports = append(reports, r)
		}
	}
	rp := tb.Replayer(capture.Workload.Records)
	rp.MaxPackets = maxReports
	rp.Start()
	tb.Run()
	if len(reports) == 0 {
		fmt.Fprintln(os.Stderr, "intddos: no INT reports collected")
		os.Exit(1)
	}

	live.Start()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	deadline := time.Time{}
	if liveFor > 0 {
		deadline = time.Now().Add(liveFor)
	}
	fmt.Printf("live pipeline running: %d reports per pass", len(reports))
	if liveFor != 0 {
		fmt.Printf(", looping for %v", liveFor)
	}
	fmt.Println(" (Ctrl-C to stop)")

	passes := 0
replay:
	for {
		for i, r := range reports {
			live.HandleReport(r)
			// Pace in small batches so the poll/predict loop keeps up
			// and queue-depth metrics show realistic occupancy.
			if i%64 == 63 {
				select {
				case <-sig:
					break replay
				case <-time.After(2 * time.Millisecond):
				}
			}
		}
		passes++
		if liveFor == 0 || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		select {
		case <-sig:
			break replay
		default:
		}
	}

	// Drain the backlog briefly, then stop and summarize.
	drain := time.Now().Add(5 * time.Second)
	for time.Now().Before(drain) {
		done := len(live.Decisions()) + int(live.Shed.Load())
		if done >= int(live.Reports.Load()) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if checkpointDir != "" {
		// Final snapshot: a clean shutdown leaves the directory exactly
		// where a restart should pick up.
		if path, n, err := live.WriteCheckpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "intddos: final checkpoint:", err)
		} else {
			fmt.Printf("final checkpoint: %s (%d bytes)\n", path, n)
		}
	}
	live.Stop()
	if diagBundle != "" {
		// The bundle is written after Stop so it carries the full run:
		// lifecycle events, final health, and the last profile state.
		if err := writeDiagBundle(diagBundle, reg); err != nil {
			fmt.Fprintln(os.Stderr, "intddos: diag bundle:", err)
		} else {
			fmt.Printf("diagnostic bundle: %s\n", diagBundle)
		}
	}

	fmt.Printf("\n%d passes, %d reports, %d decisions, %d shed, %d evicted\n",
		passes, live.Reports.Load(), len(live.Decisions()), live.Shed.Load(), live.Evictions.Load())
	if dedupWindow > 0 {
		fmt.Printf("dedup (window %d): %d duplicates, %d stale, %d reordered, %d sequence gaps\n",
			dedupWindow, live.Duplicates.Load(), live.StaleReps.Load(), live.Reordered.Load(), live.SeqGaps.Load())
	}
	for name, ls := range tb.ImpairedStats() {
		fmt.Printf("netem %s: sent=%d delivered=%d lost=%d dup=%d reordered=%d rate_dropped=%d\n",
			name, ls.Sent, ls.Delivered, ls.Lost, ls.Duplicated, ls.Reordered, ls.RateDropped)
	}
	if polled, decided, shed, abandoned := live.Polled.Load(), int64(live.DecisionCount()), live.Shed.Load(), live.Abandoned.Load(); polled == decided+shed+abandoned {
		fmt.Printf("accounting: CLOSED (polled=%d == decided=%d + shed=%d + abandoned=%d)\n", polled, decided, shed, abandoned)
	} else {
		fmt.Printf("accounting: LEAK (polled=%d != decided=%d + shed=%d + abandoned=%d)\n", polled, decided, shed, abandoned)
	}
	if injector != nil {
		fmt.Printf("health: %s; abandoned: %v; faults fired: %s; tainted flows: %d\n",
			live.Health(), live.AbandonedByReason(), injector.Summary(), injector.TaintCount())
		for _, tr := range live.HealthTransitions() {
			fmt.Println("  transition:", tr)
		}
	}
	fmt.Println("\n# metrics snapshot")
	fmt.Print(live.MetricsSnapshot().FormatSummary())
}

// writeDiagBundle snapshots the registry's diagnostic bundle to path.
func writeDiagBundle(path string, reg *intddos.ObsRegistry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteBundle(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// trainAndSave trains an RF on a generated workload and writes it as
// a bundle the Prediction module can load later.
func trainAndSave(path, scale string, seed int64) {
	capture, err := intddos.Collect(intddos.DataConfig{Scale: scale, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	train, _ := capture.INT.Split(0.1, seed)
	model, scaler, err := intddos.FitModel(intddos.StageTwoModels()[1], train.Subsample(40000, seed), seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	if err := intddos.SaveEnsemble(path, []intddos.Classifier{model}, scaler, capture.INT.Names); err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	fmt.Printf("trained RF on %d rows, wrote bundle to %s\n", min(train.Len(), 40000), path)
}

// runTrace detects over the user-provided capture, training a model
// first unless a pre-trained bundle is supplied.
func runTrace(path, bundlePath string, seed int64, verbose bool) {
	recs, err := intddos.ReadTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	var models []intddos.Classifier
	var scaler *intddos.StandardScaler
	if bundlePath != "" {
		bundle, err := intddos.LoadEnsemble(bundlePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		models = bundle.Classifiers()
		scaler = bundle.Scaler
	} else {
		capture, err := intddos.Collect(intddos.DataConfig{Scale: intddos.ScaleSmall, Seed: seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		train, _ := capture.INT.Split(0.1, seed)
		model, sc, err := intddos.FitModel(intddos.StageTwoModels()[1], train.Subsample(40000, seed), seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		models, scaler = []intddos.Classifier{model}, sc
	}

	tb := intddos.NewTestbed(intddos.TestbedConfig{})
	mech, err := intddos.NewMechanism(tb, intddos.MechanismConfig{
		Models: models,
		Scaler: scaler,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	tb.Collector.OnReport = mech.HandleReport
	if verbose {
		mech.OnDecision = func(d intddos.Decision) {
			fmt.Printf("%v %-40s label=%d latency=%v\n", d.At, d.Key, d.Label, d.Latency)
		}
	}
	mech.Start()
	rp := tb.Replayer(recs)
	rp.Start()
	// Drain: run until the backlog clears.
	for tb.Eng.Pending() > 0 && len(mech.Decisions) < len(recs) {
		tb.RunUntil(tb.Eng.Now() + intddos.Second)
	}

	attacks := 0
	for _, d := range mech.Decisions {
		if d.Label == 1 {
			attacks++
		}
	}
	fmt.Printf("replayed %d packets, %d decisions, %d flagged as attack\n",
		rp.Sent(), len(mech.Decisions), attacks)
}
