// Command intddos runs the automated DDoS detection mechanism live
// on the simulated Figure 6 testbed: it pre-trains the MLP+RF+GNB
// ensemble (SlowLoris held out as a zero-day attack), replays traffic
// through the INT pipeline, and streams per-flow decisions.
//
// Usage:
//
//	intddos [-scale small] [-seed 42] [-packets 2500] [-trace file.amtr] [-v]
//
// With -trace the replayed traffic comes from a capture written by
// datagen instead of a generated workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleSmall, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "experiment seed")
	packets := flag.Int("packets", 2500, "packets replayed per flow type")
	tracePath := flag.String("trace", "", "optional .amtr trace to replay instead of the built-in workload")
	saveBundle := flag.String("save-bundle", "", "train the ensemble and write it to this bundle file, then exit")
	bundlePath := flag.String("bundle", "", "detect over -trace using a pre-trained bundle instead of training")
	verbose := flag.Bool("v", false, "print every decision")
	flag.Parse()

	if *saveBundle != "" {
		trainAndSave(*saveBundle, *scale, *seed)
		return
	}
	if *tracePath != "" {
		runTrace(*tracePath, *bundlePath, *seed, *verbose)
		return
	}

	live, err := intddos.RunTableVI(intddos.LiveConfig{
		Scale: *scale, Seed: *seed, PacketsPerType: *packets,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	if *verbose {
		for typ, ds := range live.Decisions {
			for _, d := range ds {
				status := "ok"
				if !d.Correct() {
					status = "MISS"
				}
				fmt.Printf("%-10s %-40s label=%d latency=%v %s\n", typ, d.Key, d.Label, d.Latency, status)
			}
		}
	}
	fmt.Print(intddos.FormatTableVI(live))
}

// trainAndSave trains an RF on a generated workload and writes it as
// a bundle the Prediction module can load later.
func trainAndSave(path, scale string, seed int64) {
	capture, err := intddos.Collect(intddos.DataConfig{Scale: scale, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	train, _ := capture.INT.Split(0.1, seed)
	model, scaler, err := intddos.FitModel(intddos.StageTwoModels()[1], train.Subsample(40000, seed), seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	if err := intddos.SaveEnsemble(path, []intddos.Classifier{model}, scaler, capture.INT.Names); err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	fmt.Printf("trained RF on %d rows, wrote bundle to %s\n", min(train.Len(), 40000), path)
}

// runTrace detects over the user-provided capture, training a model
// first unless a pre-trained bundle is supplied.
func runTrace(path, bundlePath string, seed int64, verbose bool) {
	recs, err := intddos.ReadTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	var models []intddos.Classifier
	var scaler *intddos.StandardScaler
	if bundlePath != "" {
		bundle, err := intddos.LoadEnsemble(bundlePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		models = bundle.Classifiers()
		scaler = bundle.Scaler
	} else {
		capture, err := intddos.Collect(intddos.DataConfig{Scale: intddos.ScaleSmall, Seed: seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		train, _ := capture.INT.Split(0.1, seed)
		model, sc, err := intddos.FitModel(intddos.StageTwoModels()[1], train.Subsample(40000, seed), seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "intddos:", err)
			os.Exit(1)
		}
		models, scaler = []intddos.Classifier{model}, sc
	}

	tb := intddos.NewTestbed(intddos.TestbedConfig{})
	mech, err := intddos.NewMechanism(tb, intddos.MechanismConfig{
		Models: models,
		Scaler: scaler,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "intddos:", err)
		os.Exit(1)
	}
	tb.Collector.OnReport = mech.HandleReport
	if verbose {
		mech.OnDecision = func(d intddos.Decision) {
			fmt.Printf("%v %-40s label=%d latency=%v\n", d.At, d.Key, d.Label, d.Latency)
		}
	}
	mech.Start()
	rp := tb.Replayer(recs)
	rp.Start()
	// Drain: run until the backlog clears.
	for tb.Eng.Pending() > 0 && len(mech.Decisions) < len(recs) {
		tb.RunUntil(tb.Eng.Now() + intddos.Second)
	}

	attacks := 0
	for _, d := range mech.Decisions {
		if d.Label == 1 {
			attacks++
		}
	}
	fmt.Printf("replayed %d packets, %d decisions, %d flagged as attack\n",
		rp.Sent(), len(mech.Decisions), attacks)
}
