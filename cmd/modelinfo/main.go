// Command modelinfo inspects a trained model bundle written by
// `intddos -save-bundle`: the feature vector, the scaler
// coefficients the Prediction module loads (§III-4), each member
// model's structure, and — for Random Forests — a readable dump of
// one tree.
//
// Usage:
//
//	modelinfo -bundle ensemble.bundle [-tree 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/amlight/intddos"
	"github.com/amlight/intddos/internal/ml/forest"
)

func main() {
	path := flag.String("bundle", "", "bundle file to inspect")
	tree := flag.Int("tree", -1, "dump this tree index of the first Random Forest member")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	bundle, err := intddos.LoadEnsemble(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modelinfo:", err)
		os.Exit(1)
	}

	fmt.Printf("bundle: %d models, %d features\n", len(bundle.Models), len(bundle.FeatureNames))
	fmt.Println("features (with scaler coefficients):")
	for i, name := range bundle.FeatureNames {
		mean, std := 0.0, 0.0
		if i < len(bundle.Scaler.Mean) {
			mean, std = bundle.Scaler.Mean[i], bundle.Scaler.Std[i]
		}
		fmt.Printf("  %2d %-26s mean=%-14.6g std=%.6g\n", i, name, mean, std)
	}

	for _, m := range bundle.Models {
		fmt.Printf("model %s:", m.Name())
		if rf, ok := any(m).(*forest.Forest); ok {
			s := rf.Summary()
			fmt.Printf(" %d trees, %d nodes (%d leaves), max depth %d\n",
				s.Trees, s.Nodes, s.Leaves, s.MaxDepth)
			imps := rf.Importances()
			top, topV := -1, 0.0
			for j, v := range imps {
				if v > topV {
					top, topV = j, v
				}
			}
			if top >= 0 && top < len(bundle.FeatureNames) {
				fmt.Printf("  most important feature: %s (%.3f)\n", bundle.FeatureNames[top], topV)
			}
			if *tree >= 0 {
				fmt.Println(rf.Dump(*tree, bundle.FeatureNames))
			}
			continue
		}
		fmt.Println(" (opaque parameters; see package docs)")
	}
}
