// Package intddos reproduces "Leveraging In-band Network Telemetry
// for Automated DDoS Detection in Production Programmable Networks:
// The AmLight Use Case" (SC 2024) as a self-contained Go library.
//
// The package is a facade over the internal subsystems:
//
//   - a deterministic discrete-event network simulator with
//     INT-capable switches (internal/netsim, internal/telemetry);
//   - an sFlow sampling stack for the comparative experiments
//     (internal/sflow);
//   - workload generators for the paper's benign web traffic and the
//     Table I attack episodes (internal/traffic), plus a
//     tcpreplay-style trace format (internal/trace);
//   - the Data Processor's 5-tuple flow table and Table II feature
//     extraction (internal/flow);
//   - from-scratch ML: Random Forest, Gaussian Naive Bayes, KNN, and
//     MLP neural networks with scaling, metrics, and feature
//     importance (internal/ml/...);
//   - the paper's four-module automated detection mechanism
//     (internal/core) around an in-memory database (internal/store);
//   - experiment runners regenerating every table and figure of the
//     paper's evaluation (internal/experiment).
//
// Quick start:
//
//	capture, err := intddos.Collect(intddos.DataConfig{Scale: intddos.ScaleSmall, Seed: 42})
//	res, err := intddos.RunTableIII(capture, 42)
//	fmt.Print(intddos.FormatEvalRows("Table III", res.Rows))
package intddos

import (
	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/experiment"
	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/mitigate"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/sketch"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/obs/prof"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

// Workload scale presets.
const (
	ScaleTiny  = traffic.ScaleTiny
	ScaleSmall = traffic.ScaleSmall
	ScaleFull  = traffic.ScaleFull
)

// Attack type names (Table I / Table VI row keys).
const (
	Benign    = traffic.Benign
	SYNScan   = traffic.SYNScan
	UDPScan   = traffic.UDPScan
	SYNFlood  = traffic.SYNFlood
	SlowLoris = traffic.SlowLoris
)

// Simulation time (nanoseconds on the virtual clock).
type Time = netsim.Time

// Common durations.
const (
	Nanosecond  = netsim.Nanosecond
	Microsecond = netsim.Microsecond
	Millisecond = netsim.Millisecond
	Second      = netsim.Second
)

// Capture and experiment types.
type (
	// DataConfig parameterizes workload capture.
	DataConfig = experiment.DataConfig
	// Capture is a monitored workload with INT and sFlow datasets.
	Capture = experiment.Capture
	// EvalResult is one model-comparison row (Tables III/IV).
	EvalResult = experiment.EvalResult
	// TableIIIResult bundles Table III with Figures 3 and 4.
	TableIIIResult = experiment.TableIIIResult
	// TableIRow is one attack episode with its packet count.
	TableIRow = experiment.TableIRow
	// TableVRow is one model's top-five feature importances.
	TableVRow = experiment.TableVRow
	// Figure5 is the timeline comparison of truth vs predictions.
	Figure5 = experiment.Figure5
	// TimelinePoint is one Figure 5 bucket.
	TimelinePoint = experiment.TimelinePoint
	// EpisodeCoverage counts per-episode observations per source.
	EpisodeCoverage = experiment.EpisodeCoverage
	// LiveConfig parameterizes the stage-2 live experiment.
	LiveConfig = experiment.LiveConfig
	// LiveResult is the stage-2 outcome (Table VI, Figure 7).
	LiveResult = experiment.LiveResult
	// ModelSpec names a trainable model family.
	ModelSpec = experiment.ModelSpec
	// ScalingConfig parameterizes the processing-capability sweep.
	ScalingConfig = experiment.ScalingConfig
	// ScalingPoint is one offered-load measurement.
	ScalingPoint = experiment.ScalingPoint
	// ROCRow is one model/source ROC summary.
	ROCRow = experiment.ROCRow
	// MitigationResult summarizes one closed-loop mitigation replay.
	MitigationResult = experiment.MitigationResult
	// ChaosConfig parameterizes a fault-injected live replay.
	ChaosConfig = experiment.ChaosConfig
	// ChaosResult summarizes how the pipeline degraded under faults.
	ChaosResult = experiment.ChaosResult
	// TriageSweepConfig parameterizes the tiered-inference sweep over
	// benign fraction × stage-0 threshold.
	TriageSweepConfig = experiment.TriageSweepConfig
	// TriageSweep is the sweep's exit-rate/accuracy grid.
	TriageSweep = experiment.TriageSweep
	// TriageCell is one sweep measurement.
	TriageCell = experiment.TriageCell
	// ImpairConfig parameterizes the adverse-network sweep: Table
	// III/IV re-run over a grid of report-wire impairments.
	ImpairConfig = experiment.ImpairConfig
	// ImpairPoint is one sweep grid point (name + netem sub-clauses).
	ImpairPoint = experiment.ImpairPoint
	// ImpairRow is one grid point's accounting and accuracy outcome.
	ImpairRow = experiment.ImpairRow
	// ImpairResult is the sweep artifact (see WriteImpairJSON).
	ImpairResult = experiment.ImpairResult
	// SoakConfig parameterizes the adverse-network soak: the live
	// pipeline fed a scrambled (reordered/duplicated/stale) multi-pass
	// report stream materialized through an impaired wire.
	SoakConfig = experiment.SoakConfig
	// SoakResult is the soak outcome: ledgers, wire stats, accuracy.
	SoakResult = experiment.SoakResult
)

// ML layer types.
type (
	// Dataset is a dense feature matrix with binary labels.
	Dataset = ml.Dataset
	// Scores bundles accuracy, recall, precision, and F1.
	Scores = ml.Scores
	// ConfusionMatrix is the 2×2 positives/negatives matrix.
	ConfusionMatrix = ml.ConfusionMatrix
	// Classifier is a trainable binary classifier.
	Classifier = ml.Classifier
	// BatchClassifier is a Classifier with an amortized many-rows
	// scoring path; every shipped model family implements it.
	BatchClassifier = ml.BatchClassifier
	// BatchProbaClassifier adds the batched attack-probability path
	// the tiered cascade's stage-0 model must expose.
	BatchProbaClassifier = ml.BatchProbaClassifier
	// Cascade is the early-exit scoring cascade behind tiered
	// inference (MechanismConfig.Triage / LiveRuntimeConfig.Triage).
	Cascade = ml.Cascade
	// CascadeStage is one cascade stage: a model plus its exit
	// confidence threshold.
	CascadeStage = ml.CascadeStage
	// Sketch is the streaming count-min + flow-key-entropy triage
	// sketch feeding the cascade's suspicion veto.
	Sketch = sketch.Sketch
	// StandardScaler standardizes features to zero mean, unit var.
	StandardScaler = ml.StandardScaler
	// Bundle is a deployable model set: ensemble + scaler + feature
	// names, as the Prediction module loads at initialization.
	Bundle = ml.Bundle
)

// Substrate types for building custom setups.
type (
	// Workload is a generated capture plus its attack schedule.
	Workload = traffic.Workload
	// WorkloadConfig shapes workload generation.
	WorkloadConfig = traffic.Config
	// Schedule is the list of attack episodes.
	Schedule = traffic.Schedule
	// Episode is one attack window.
	Episode = traffic.Episode
	// Record is one captured packet in a trace.
	Record = trace.Record
	// Replayer injects a trace through a host (tcpreplay analogue).
	Replayer = trace.Replayer
	// Testbed is the Figure 6 single-switch rig.
	Testbed = testbed.Testbed
	// TestbedConfig parameterizes the rig.
	TestbedConfig = testbed.Config
	// Report is one decoded INT telemetry report.
	Report = telemetry.Report
	// NetCollector terminates report datagrams on a real UDP socket.
	NetCollector = telemetry.NetCollector
	// ReportSender ships encoded reports to a collector over UDP.
	ReportSender = telemetry.ReportSender
	// FlowSample is one decoded sFlow sample.
	FlowSample = sflow.FlowSample
	// FeatureSet selects the model input features.
	FeatureSet = flow.FeatureSet
	// FlowKey is the 5-tuple flow identity.
	FlowKey = flow.Key
	// Mechanism is the paper's automated detection pipeline.
	Mechanism = core.Mechanism
	// MechanismConfig parameterizes the pipeline.
	MechanismConfig = core.Config
	// Live is the wall-clock concurrent runtime of the pipeline.
	Live = core.Live
	// LiveRuntimeConfig parameterizes the wall-clock runtime.
	LiveRuntimeConfig = core.LiveConfig
	// Decision is one final smoothed classification.
	Decision = core.Decision
	// RestoreSummary describes the checkpoint a live runtime resumed
	// from (see Live.Restore and LiveRuntimeConfig.CheckpointDir).
	RestoreSummary = core.RestoreSummary
	// TypeResult is one Table VI row.
	TypeResult = core.TypeResult
	// HealthState is the live pipeline's aggregate condition
	// (healthy, degraded, or shedding), reported on /healthz.
	HealthState = core.HealthState
	// FaultSpec is a parsed fault-injection schedule.
	FaultSpec = fault.Spec
	// FaultInjector decides, deterministically from a seed, when the
	// faults of a FaultSpec fire; wire it into
	// LiveRuntimeConfig.Fault to chaos-test the live pipeline.
	FaultInjector = fault.Injector
	// NetemSpec maps link names to netem-style impairments; wire it
	// into TestbedConfig.Netem or DataConfig.Netem ("*" matches every
	// link).
	NetemSpec = fault.NetemSpec
	// LinkImpairment is one link's netem parameters (delay/jitter,
	// loss, dup, reorder, rate cap, queue limit).
	LinkImpairment = fault.LinkImpairment
	// LinkImpairStats is an impaired link's delivery ledger.
	LinkImpairStats = netsim.ImpairStats
)

// Pipeline health states, in increasing severity.
const (
	HealthHealthy  = core.HealthHealthy
	HealthDegraded = core.HealthDegraded
	HealthShedding = core.HealthShedding
)

// Extension modules: microburst detection over the same telemetry
// feed (the paper's reference [8]) and the mitigation hooks it lists
// as future work.
type (
	// Microburst is one detected queue-buildup event.
	Microburst = telemetry.Microburst
	// MicroburstDetector coalesces hot queue-occupancy runs.
	MicroburstDetector = telemetry.MicroburstDetector
	// MitigationRule is one generated drop rule.
	MitigationRule = mitigate.Rule
	// MitigateConfig parameterizes rule generation.
	MitigateConfig = mitigate.Config
	// RuleGenerator turns attack decisions into expiring drop rules.
	RuleGenerator = mitigate.Generator
)

// Observability layer: a dependency-free metrics registry with
// counters, gauges, and lock-free latency histograms, a sampled
// per-stage span tracer, and an HTTP surface exposing /metrics
// (Prometheus text), /healthz, /traces, and pprof. Wire a registry
// into LiveRuntimeConfig.Registry (or read Live.Obs()) and mount
// Registry.Handler() to watch the pipeline run.
type (
	// ObsRegistry names and owns a set of metrics for one pipeline.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time copy of every metric.
	ObsSnapshot = obs.Snapshot
	// ObsHistogramSnapshot is one histogram's state with quantiles.
	ObsHistogramSnapshot = obs.HistogramSnapshot
	// ObsServer is a running observability HTTP listener.
	ObsServer = obs.Server
	// PipelineTrace is one sampled record's per-stage timing journey.
	PipelineTrace = obs.Trace
	// ObsEvent is one structured pipeline event (worker restart,
	// health transition, checkpoint, shed decision).
	ObsEvent = obs.Event
	// ObsEventLog is the bounded in-memory event ring behind
	// /debug/events and Live.Events().
	ObsEventLog = obs.EventLog
	// FlowJourney is one sampled record's end-to-end hop trail
	// (ingest → journal → poll → batch → predict → vote).
	FlowJourney = obs.Journey
	// FlowJourneys is the journey sampler behind /traces/flow.
	FlowJourneys = obs.Journeys
	// ProfilerConfig parameterizes always-on contention profiling.
	ProfilerConfig = prof.Config
	// Profiler owns sampling rates, the on-disk capture ring, and the
	// contention-attribution wiring for one pipeline.
	Profiler = prof.Profiler
	// AttributionReport maps profiled blocked time onto pipeline
	// stages (served on /debug/attrib).
	AttributionReport = prof.Report
)

// StartProfiler enables contention profiling per cfg (the live
// runtime starts one automatically; use this for custom setups).
func StartProfiler(cfg ProfilerConfig) (*Profiler, error) { return prof.Start(cfg) }

// ContentionAttribution reads the process's mutex and block profiles
// and attributes the top blocked-time stacks to pipeline stages.
func ContentionAttribution(topN int) *AttributionReport { return prof.Attribution(topN, nil) }

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// Observability helpers.
var (
	// LatencyBuckets is the default 1µs–60s histogram bucket ladder.
	LatencyBuckets = obs.LatencyBuckets
	// FormatLatencySummary renders a Table-VI-style percentile table
	// (p50/p95/p99/max) from per-label histogram snapshots.
	FormatLatencySummary = obs.FormatLatencySummary
)

// NewMicroburstDetector builds a detector with the given queue-depth
// threshold and quiet period.
func NewMicroburstDetector(threshold uint32, quiet Time) *MicroburstDetector {
	return telemetry.NewMicroburstDetector(threshold, quiet)
}

// NewRuleGenerator builds a mitigation rule generator.
func NewRuleGenerator(cfg MitigateConfig) *RuleGenerator { return mitigate.NewGenerator(cfg) }

// BuildWorkload generates the June 6–11 benign-plus-attacks capture
// at the given scale preset.
func BuildWorkload(scale string, seed int64) *Workload {
	return traffic.Build(traffic.ConfigForScale(scale, seed))
}

// PaperSchedule maps Table I onto a compressed timeline.
func PaperSchedule(dayLen, minEpisode Time) Schedule {
	return traffic.PaperSchedule(dayLen, minEpisode)
}

// NewTestbed assembles the Figure 6 topology.
func NewTestbed(cfg TestbedConfig) *Testbed { return testbed.New(cfg) }

// NewMechanism builds the automated detection pipeline on a testbed's
// engine; wire it with tb.Collector.OnReport = m.HandleReport.
func NewMechanism(tb *Testbed, cfg MechanismConfig) (*Mechanism, error) {
	return core.New(tb.Eng, cfg)
}

// NewLiveRuntime builds the wall-clock concurrent runtime of the
// mechanism, for driving with real (non-simulated) report feeds.
func NewLiveRuntime(cfg LiveRuntimeConfig) (*Live, error) { return core.NewLive(cfg) }

// ParseFaultSpec parses a fault schedule in the clause grammar
// ("drop=0.01,store.stall=5ms@0.02,model.fail=GNB@0.5", ...) and
// returns an injector seeded for deterministic replay. An empty spec
// returns a nil injector, which injects nothing.
func ParseFaultSpec(spec string, seed int64) (*FaultInjector, error) {
	return fault.Parse(spec, seed)
}

// ParseNetem parses netem clauses in the fault grammar
// ("netem[link=agent->collector]:delay=2ms,jitter=1ms,loss=0.5%,dup=0.1%",
// ...) into a per-link impairment spec. An empty spec returns a nil
// NetemSpec, which impairs nothing.
func ParseNetem(spec string) (NetemSpec, error) { return fault.ParseNetem(spec) }

// Names of the testbed's impairable links, as ParseNetem's link=
// selector addresses them.
const (
	LinkSourceSwitch    = testbed.LinkSourceSwitch
	LinkSwitchLoop      = testbed.LinkSwitchLoop
	LinkSwitchTarget    = testbed.LinkSwitchTarget
	LinkSwitchCollector = testbed.LinkSwitchCollector
	LinkAgentCollector  = testbed.LinkAgentCollector
	LinkSFlowCollector  = testbed.LinkSFlowCollector
)

// ListenReports opens a UDP INT-report collector on addr
// ("127.0.0.1:0" picks a free port).
func ListenReports(addr string) (*NetCollector, error) { return telemetry.ListenReports(addr) }

// DialReports connects a report sender to a collector address.
func DialReports(addr string) (*ReportSender, error) { return telemetry.DialReports(addr, 0) }

// INTFeatures returns the paper's 15-feature INT input vector.
func INTFeatures() FeatureSet { return flow.INTFeatures() }

// SFlowFeatures returns the 12 features derivable from sampled data.
func SFlowFeatures() FeatureSet { return flow.SFlowFeatures() }

// Collect replays a workload through the testbed with INT and sFlow
// attached and materializes both datasets.
func Collect(cfg DataConfig) (*Capture, error) { return experiment.Collect(cfg) }

// TablesSFlowRate returns the sampling rate preserving per-class
// sample volumes at a workload scale.
func TablesSFlowRate(scale string) int { return experiment.TablesSFlowRate(scale) }

// CoverageSFlowRate returns the sampling rate preserving the
// production deployment's per-episode sample proportions.
func CoverageSFlowRate(scale string) int { return experiment.CoverageSFlowRate(scale) }

// StageOneModels returns the §IV-B model families (RF, GNB, KNN, NN).
func StageOneModels() []ModelSpec { return experiment.StageOneModels() }

// StageTwoModels returns the §IV-C ensemble members (MLP, RF, GNB).
func StageTwoModels() []ModelSpec { return experiment.StageTwoModels() }

// TrainEval fits one model spec and scores it.
func TrainEval(spec ModelSpec, train, test *Dataset, seed int64) (EvalResult, error) {
	return experiment.TrainEval(spec, train, test, seed)
}

// FitModel standardizes and fits one model, returning the classifier
// and its scaler.
func FitModel(spec ModelSpec, train *Dataset, seed int64) (Classifier, *StandardScaler, error) {
	return experiment.FitModel(spec, train, seed)
}

// RunTableI returns the attack schedule with packet counts.
func RunTableI(c *Capture) []TableIRow { return experiment.RunTableI(c) }

// RunTableII returns the Table II feature-availability matrix.
func RunTableII() []flow.AvailabilityRow { return experiment.RunTableII() }

// RunTableIII runs the 90:10-split model comparison.
func RunTableIII(c *Capture, seed int64) (*TableIIIResult, error) {
	return experiment.RunTableIII(c, seed)
}

// RunTableIV runs the zero-day (SlowLoris held-out) comparison.
func RunTableIV(c *Capture, seed int64) ([]EvalResult, error) {
	return experiment.RunTableIV(c, seed)
}

// RunTableV computes per-model top-five feature importances.
func RunTableV(c *Capture, seed int64) ([]TableVRow, error) {
	return experiment.RunTableV(c, seed)
}

// RunTableVI runs the live automated-detection experiment.
func RunTableVI(cfg LiveConfig) (*LiveResult, error) { return experiment.RunTableVI(cfg) }

// RunFigure5 sweeps RF predictions across the capture timeline.
func RunFigure5(c *Capture, buckets int, seed int64) (*Figure5, error) {
	return experiment.RunFigure5(c, buckets, seed)
}

// RunEpisodeCoverage counts per-episode observations per source.
func RunEpisodeCoverage(c *Capture) []EpisodeCoverage {
	return experiment.RunEpisodeCoverage(c)
}

// RunScalingStudy sweeps offered load through the prediction
// pipeline, quantifying the §V processing-capability discussion.
func RunScalingStudy(cfg ScalingConfig) ([]ScalingPoint, error) {
	return experiment.RunScalingStudy(cfg)
}

// RunROC computes threshold-free ROC/AUC comparisons for the
// probability-capable models on both monitoring sources.
func RunROC(c *Capture, seed int64) ([]ROCRow, error) { return experiment.RunROC(c, seed) }

// RunMitigation closes the detection→drop-rule loop in the data
// plane and measures per-attack suppression.
func RunMitigation(cfg LiveConfig) ([]MitigationResult, error) {
	return experiment.RunMitigation(cfg)
}

// RunChaos trains the stage-2 ensemble and replays the workload's INT
// reports through the wall-clock runtime under a deterministic fault
// schedule, returning the degradation summary.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) { return experiment.RunChaos(cfg) }

// RunTriageSweep measures the tiered cascade's exit rate and accuracy
// cost across benign fraction × threshold, against triage-off
// baselines on identical streams.
func RunTriageSweep(cfg TriageSweepConfig) (*TriageSweep, error) {
	return experiment.RunTriageSweep(cfg)
}

// RunImpairmentSweep re-runs the Table III/IV experiments across a
// grid of report-wire impairments, quantifying the accuracy cost of
// adverse telemetry networks. Row 0 is always the clean baseline.
func RunImpairmentSweep(cfg ImpairConfig) (*ImpairResult, error) {
	return experiment.RunImpairmentSweep(cfg)
}

// RunSoak trains the stage-2 ensemble, then feeds the wall-clock
// runtime a multi-pass reordered/duplicated/stale report stream
// materialized through an impaired wire, asserting that the report
// and pipeline ledgers still close and accuracy stays bounded.
func RunSoak(cfg SoakConfig) (*SoakResult, error) { return experiment.RunSoak(cfg) }

// DefaultTriageThreshold is the stage-0 exit confidence used when
// triage is enabled without an explicit threshold.
const DefaultTriageThreshold = core.DefaultTriageThreshold

// NewSketch builds a triage sketch (non-positive arguments select the
// defaults the pipeline uses).
func NewSketch(depth, width int) *Sketch { return sketch.New(depth, width) }

// FeatureAblation contrasts INT with and without queue-occupancy
// features.
func FeatureAblation(c *Capture, seed int64) (withQueue, withoutQueue EvalResult, err error) {
	return experiment.FeatureAblation(c, seed)
}

// HopLatencyAblation restores the hop-latency features the paper
// excluded and measures their contribution.
func HopLatencyAblation(cfg DataConfig, seed int64) (with, without EvalResult, err error) {
	return experiment.HopLatencyAblation(cfg, seed)
}

// Rendering helpers (text output matching the paper's artifacts).
var (
	FormatTableI          = experiment.FormatTableI
	FormatTableII         = experiment.FormatTableII
	FormatEvalRows        = experiment.FormatEvalRows
	FormatConfusion       = experiment.FormatConfusion
	FormatTableV          = experiment.FormatTableV
	FormatTableVI         = experiment.FormatTableVI
	FormatFigure5         = experiment.FormatFigure5
	FormatFigure7         = experiment.FormatFigure7
	FormatEpisodeCoverage = experiment.FormatEpisodeCoverage
	FormatScaling         = experiment.FormatScaling
	FormatROC             = experiment.FormatROC
	FormatMitigation      = experiment.FormatMitigation
	FormatTableVMatrix    = experiment.FormatTableVMatrix
	FormatChaos           = experiment.FormatChaos
	FormatTriageSweep     = experiment.FormatTriageSweep
	FormatImpairmentSweep = experiment.FormatImpairmentSweep
	FormatSoak            = experiment.FormatSoak
)

// CSV exports for re-plotting outside Go.
var (
	WriteEvalCSV    = experiment.WriteEvalCSV
	WriteTableICSV  = experiment.WriteTableICSV
	WriteFigure5CSV = experiment.WriteFigure5CSV
	WriteTableVICSV = experiment.WriteTableVICSV
	WriteFigure7CSV = experiment.WriteFigure7CSV
	WriteScalingCSV = experiment.WriteScalingCSV
	WriteDatasetCSV = experiment.WriteDatasetCSV
	WriteCSVFile    = experiment.WriteCSVFile
	WriteImpairJSON = experiment.WriteImpairJSON
)

// ReadTrace and WriteTrace persist packet captures.
var (
	ReadTrace  = trace.ReadFile
	WriteTrace = trace.WriteFile
)

// SaveEnsemble writes trained models plus their shared scaler to a
// bundle file.
func SaveEnsemble(path string, models []Classifier, scaler *StandardScaler, featureNames []string) error {
	return experiment.SaveEnsemble(path, models, scaler, featureNames)
}

// LoadEnsemble restores a bundle written by SaveEnsemble.
func LoadEnsemble(path string) (*Bundle, error) { return experiment.LoadEnsemble(path) }
