#!/usr/bin/env bash
# Diagnostics smoke test: run the live pipeline with the observability
# server bound to an ephemeral port, pull a diagnostic bundle from
# /debug/bundle while it is running, let the run write its exit bundle
# via -diag-bundle, and validate both archives with scripts/diagcheck
# (well-formed tar.gz, required entries present and non-empty,
# events.jsonl parseable). This is the end-to-end "can an operator get
# evidence out of a running pipeline" path; the per-entry contents are
# covered by the internal/obs unit tests.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/intddos" ./cmd/intddos
go build -o "$workdir/diagcheck" ./scripts/diagcheck

log="$workdir/run.log"
exit_bundle="$workdir/exit-bundle.tar.gz"

# Loop until killed so the live /debug/bundle fetch races nothing;
# journey sampling on every record so the bundle has traces in it.
"$workdir/intddos" -live -scale tiny -packets 300 -live-for -1s \
    -shards 2 -workers 2 \
    -obs-addr 127.0.0.1:0 -diag-bundle "$exit_bundle" >"$log" 2>&1 &
pid=$!

fail() {
    echo "diag-smoke: $1" >&2
    sed 's/^/  run: /' "$log" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
}

# Wait for the observability server to announce its bound address.
addr=""
for _ in $(seq 1 120); do
    addr="$(sed -n 's|^observability endpoints on http://\([^ ]*\).*|\1|p' "$log" | head -1)"
    if [ -n "$addr" ]; then break; fi
    if ! kill -0 "$pid" 2>/dev/null; then fail "pipeline exited before binding the obs server"; fi
    sleep 0.5
done
[ -n "$addr" ] && [ "${addr##*:}" != "0" ] || fail "no bound obs address in the log"

# Give the replay a moment to put events and decisions on the books,
# then pull a bundle from the running pipeline.
sleep 2
"$workdir/diagcheck" "http://$addr/debug/bundle" \
    || fail "/debug/bundle did not validate"

# Graceful shutdown writes the exit bundle.
kill -INT "$pid"
wait "$pid" 2>/dev/null || true
[ -s "$exit_bundle" ] || fail "-diag-bundle wrote nothing on exit"
"$workdir/diagcheck" "$exit_bundle" || fail "exit bundle did not validate"
grep -q "diagnostic bundle:" "$log" || fail "run log does not mention the exit bundle"

echo "diag-smoke: OK"
