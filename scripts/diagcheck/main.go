// diagcheck validates a diagnostic bundle produced by
// Registry.WriteBundle (/debug/bundle, -diag-bundle, or the chaos
// harness): the argument must be a well-formed tar.gz whose required
// entries are present and non-empty, with events.jsonl parsing as one
// JSON object per line. It exits non-zero naming what is missing, so
// the smoke script's failure output says which artifact regressed.
//
// With -bench-shard it instead validates a BENCH_shard.json sweep
// (`make bench-shard` / the CI bench-shard smoke): the legacy
// baseline row plus at least one sharded row, positive throughput in
// every row, and a populated contention attribution.
//
// With -bench-tier it validates a BENCH_tier.json sweep (`make
// bench-tier` / the CI bench-tier smoke): untiered baseline rows plus
// triaged rows, positive throughput everywhere, exit rates in [0, 1],
// and a speedup recorded on every triaged row.
//
// With -bench-checkpoint it validates a BENCH_checkpoint.json sweep
// (`make bench-checkpoint` / the CI bench-checkpoint smoke): every
// row must carry a flow count, a positive encoded size, positive
// write throughput, a recorded barrier hold, and a restore that
// brought back exactly the flows it checkpointed.
//
// With -impair it validates an impairment-sweep artifact (`reproduce
// -only impair -impair-out ...`): a clean baseline row plus at least
// one impaired row, accuracies in (0, 1], and the accounting ledger
// closed on every row.
package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

var required = []string{
	"meta.txt",
	"metrics.prom",
	"metrics.txt",
	"health.txt",
	"events.jsonl",
}

func main() {
	switch {
	case len(os.Args) == 3 && os.Args[1] == "-bench-shard":
		if err := checkBenchShard(os.Args[2]); err != nil {
			fmt.Fprintf(os.Stderr, "diagcheck: %s: %v\n", os.Args[2], err)
			os.Exit(1)
		}
	case len(os.Args) == 3 && os.Args[1] == "-bench-tier":
		if err := checkBenchTier(os.Args[2]); err != nil {
			fmt.Fprintf(os.Stderr, "diagcheck: %s: %v\n", os.Args[2], err)
			os.Exit(1)
		}
	case len(os.Args) == 3 && os.Args[1] == "-bench-checkpoint":
		if err := checkBenchCheckpoint(os.Args[2]); err != nil {
			fmt.Fprintf(os.Stderr, "diagcheck: %s: %v\n", os.Args[2], err)
			os.Exit(1)
		}
	case len(os.Args) == 3 && os.Args[1] == "-impair":
		if err := checkImpair(os.Args[2]); err != nil {
			fmt.Fprintf(os.Stderr, "diagcheck: %s: %v\n", os.Args[2], err)
			os.Exit(1)
		}
	case len(os.Args) == 2:
		if err := check(os.Args[1]); err != nil {
			fmt.Fprintf(os.Stderr, "diagcheck: %s: %v\n", os.Args[1], err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: diagcheck <bundle.tar.gz | http://host/debug/bundle>")
		fmt.Fprintln(os.Stderr, "       diagcheck -bench-shard <BENCH_shard.json>")
		fmt.Fprintln(os.Stderr, "       diagcheck -bench-tier <BENCH_tier.json>")
		fmt.Fprintln(os.Stderr, "       diagcheck -bench-checkpoint <BENCH_checkpoint.json>")
		fmt.Fprintln(os.Stderr, "       diagcheck -impair <impair.json>")
		os.Exit(2)
	}
}

// checkBenchShard validates a BenchmarkShardScaling sweep file: the
// sweep must have completed (legacy baseline plus sharded rows, each
// with positive throughput) and carry the contention attribution the
// scaling analysis reads.
func checkBenchShard(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sweep struct {
		Bench   string `json:"bench"`
		Results []struct {
			Shards       int     `json:"shards"`
			Workers      int     `json:"workers"`
			NsPerIngest  float64 `json:"ns_per_ingest"`
			IngestPerSec float64 `json:"ingest_per_sec"`
		} `json:"results"`
		Attribution *struct {
			Stages []json.RawMessage `json:"stages"`
		} `json:"contention_attribution"`
	}
	if err := json.Unmarshal(data, &sweep); err != nil {
		return fmt.Errorf("not valid sweep JSON: %w", err)
	}
	if sweep.Bench != "BenchmarkShardScaling" {
		return fmt.Errorf("bench is %q, want BenchmarkShardScaling", sweep.Bench)
	}
	legacy, sharded := false, 0
	for i, r := range sweep.Results {
		if r.NsPerIngest <= 0 || r.IngestPerSec <= 0 {
			return fmt.Errorf("result %d (shards=%d): non-positive throughput", i, r.Shards)
		}
		if r.Shards == 0 {
			legacy = true
		} else {
			sharded++
		}
	}
	if !legacy {
		return fmt.Errorf("sweep has no legacy (shards=0) baseline row")
	}
	if sharded == 0 {
		return fmt.Errorf("sweep has no sharded rows")
	}
	if sweep.Attribution == nil || len(sweep.Attribution.Stages) == 0 {
		return fmt.Errorf("sweep has no contention attribution")
	}
	fmt.Printf("diagcheck: OK (%d sweep rows, %d attribution stages)\n",
		len(sweep.Results), len(sweep.Attribution.Stages))
	return nil
}

// checkBenchTier validates a BenchmarkTiered* sweep file: the sweep
// must carry untiered baselines and triaged rows, every row must show
// positive throughput and a sane exit rate, and every triaged row
// must record its speedup against the matching baseline.
func checkBenchTier(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sweep struct {
		Bench   string `json:"bench"`
		Results []struct {
			Config     string  `json:"config"`
			Triage     bool    `json:"triage"`
			NsPerRow   float64 `json:"ns_per_row"`
			RowsPerSec float64 `json:"rows_per_sec"`
			ExitRate   float64 `json:"exit_rate"`
			Speedup    float64 `json:"speedup_vs_baseline"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &sweep); err != nil {
		return fmt.Errorf("not valid sweep JSON: %w", err)
	}
	if sweep.Bench != "BenchmarkTiered" {
		return fmt.Errorf("bench is %q, want BenchmarkTiered", sweep.Bench)
	}
	baselines, triaged := 0, 0
	for i, r := range sweep.Results {
		if r.NsPerRow <= 0 || r.RowsPerSec <= 0 {
			return fmt.Errorf("result %d (%s): non-positive throughput", i, r.Config)
		}
		if r.ExitRate < 0 || r.ExitRate > 1 {
			return fmt.Errorf("result %d (%s): exit rate %v outside [0, 1]", i, r.Config, r.ExitRate)
		}
		if !r.Triage {
			baselines++
			continue
		}
		triaged++
		if r.Speedup <= 0 {
			return fmt.Errorf("result %d (%s): triaged row without a speedup", i, r.Config)
		}
	}
	if baselines == 0 {
		return fmt.Errorf("sweep has no untiered baseline row")
	}
	if triaged == 0 {
		return fmt.Errorf("sweep has no triaged rows")
	}
	fmt.Printf("diagcheck: OK (%d sweep rows: %d baseline, %d triaged)\n",
		len(sweep.Results), baselines, triaged)
	return nil
}

// checkBenchCheckpoint validates a BenchmarkCheckpoint sweep file:
// every row must identify its flow count, show a positive encoded
// size and write throughput, record the barrier hold the capture
// actually froze the pipeline for, and restore exactly the flows it
// checkpointed.
func checkBenchCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sweep struct {
		Bench   string `json:"bench"`
		Results []struct {
			Flows         int     `json:"flows"`
			Bytes         int     `json:"bytes"`
			WriteNsPerOp  float64 `json:"write_ns_per_op"`
			WriteMBPerSec float64 `json:"write_mb_per_sec"`
			BarrierNs     int64   `json:"barrier_ns"`
			RestoreNs     float64 `json:"restore_ns"`
			RestoredFlows int     `json:"restored_flows"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &sweep); err != nil {
		return fmt.Errorf("not valid sweep JSON: %w", err)
	}
	if sweep.Bench != "BenchmarkCheckpoint" {
		return fmt.Errorf("bench is %q, want BenchmarkCheckpoint", sweep.Bench)
	}
	if len(sweep.Results) == 0 {
		return fmt.Errorf("sweep has no rows")
	}
	for i, r := range sweep.Results {
		if r.Flows <= 0 {
			return fmt.Errorf("result %d: no flow count", i)
		}
		if r.Bytes <= 0 {
			return fmt.Errorf("result %d (flows=%d): non-positive encoded size", i, r.Flows)
		}
		if r.WriteNsPerOp <= 0 || r.WriteMBPerSec <= 0 {
			return fmt.Errorf("result %d (flows=%d): non-positive write throughput", i, r.Flows)
		}
		if r.BarrierNs <= 0 {
			return fmt.Errorf("result %d (flows=%d): no barrier hold recorded", i, r.Flows)
		}
		if r.BarrierNs > int64(r.WriteNsPerOp)+1 {
			return fmt.Errorf("result %d (flows=%d): barrier %dns exceeds the whole write (%vns)",
				i, r.Flows, r.BarrierNs, r.WriteNsPerOp)
		}
		if r.RestoreNs <= 0 {
			return fmt.Errorf("result %d (flows=%d): no restore time", i, r.Flows)
		}
		if r.RestoredFlows != r.Flows {
			return fmt.Errorf("result %d: restored %d flows of %d", i, r.RestoredFlows, r.Flows)
		}
	}
	fmt.Printf("diagcheck: OK (%d sweep rows)\n", len(sweep.Results))
	return nil
}

// checkImpair validates an impairment-sweep artifact: row 0 must be
// the clean baseline, at least one row must actually impair the wire,
// accuracies must be real scores, and every row's delivery accounting
// must close (no report unaccounted for between link and collector).
func checkImpair(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sweep struct {
		Scale         string   `json:"scale"`
		ReorderWindow int      `json:"reorder_window"`
		Models        []string `json:"models"`
		Rows          []struct {
			Name             string  `json:"name"`
			Spec             string  `json:"spec"`
			INTRows          int     `json:"int_rows"`
			Lost             int     `json:"link_lost"`
			Dupd             int     `json:"link_duplicated"`
			MacroAccuracy    float64 `json:"macro_accuracy"`
			ZeroDay          float64 `json:"zero_day_accuracy"`
			AccountingClosed bool    `json:"accounting_closed"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &sweep); err != nil {
		return fmt.Errorf("not valid sweep JSON: %w", err)
	}
	if len(sweep.Rows) < 2 {
		return fmt.Errorf("sweep has %d rows, want a baseline plus impaired rows", len(sweep.Rows))
	}
	if sweep.Rows[0].Spec != "" {
		return fmt.Errorf("row 0 (%s) is not the clean baseline", sweep.Rows[0].Name)
	}
	if len(sweep.Models) == 0 {
		return fmt.Errorf("sweep names no models")
	}
	impaired := 0
	for i, r := range sweep.Rows {
		if r.INTRows <= 0 {
			return fmt.Errorf("row %d (%s): no INT rows", i, r.Name)
		}
		if r.MacroAccuracy <= 0 || r.MacroAccuracy > 1 || r.ZeroDay <= 0 || r.ZeroDay > 1 {
			return fmt.Errorf("row %d (%s): accuracy outside (0, 1]", i, r.Name)
		}
		if !r.AccountingClosed {
			return fmt.Errorf("row %d (%s): accounting leak", i, r.Name)
		}
		if r.Spec != "" {
			impaired++
		}
	}
	if impaired == 0 {
		return fmt.Errorf("sweep has no impaired rows")
	}
	fmt.Printf("diagcheck: OK (%d sweep rows: 1 baseline, %d impaired; reorder_window=%d)\n",
		len(sweep.Rows), impaired, sweep.ReorderWindow)
	return nil
}

// open returns the bundle stream: a local file, or — when the
// argument is an http(s) URL, as in the smoke test hitting a live
// /debug/bundle — the response body.
func open(path string) (io.ReadCloser, error) {
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(path)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("HTTP %s", resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(path)
}

func check(path string) error {
	f, err := open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("not a gzip stream: %w", err)
	}
	defer gz.Close()

	sizes := map[string]int64{}
	var events []byte
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("corrupt tar: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("reading %s: %w", hdr.Name, err)
		}
		sizes[hdr.Name] = int64(len(data))
		if hdr.Name == "events.jsonl" {
			events = data
		}
		if strings.HasSuffix(hdr.Name, ".error") {
			fmt.Printf("  (entry %s: %s)\n", hdr.Name, strings.TrimSpace(string(data)))
		}
	}

	var missing []string
	for _, name := range required {
		if n, ok := sizes[name]; !ok || n == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing or empty entries: %s", strings.Join(missing, ", "))
	}
	for i, line := range strings.Split(strings.TrimSpace(string(events)), "\n") {
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			return fmt.Errorf("events.jsonl line %d is not JSON: %v", i+1, err)
		}
	}
	fmt.Printf("diagcheck: OK (%d entries)\n", len(sizes))
	return nil
}
