// diagcheck validates a diagnostic bundle produced by
// Registry.WriteBundle (/debug/bundle, -diag-bundle, or the chaos
// harness): the argument must be a well-formed tar.gz whose required
// entries are present and non-empty, with events.jsonl parsing as one
// JSON object per line. It exits non-zero naming what is missing, so
// the smoke script's failure output says which artifact regressed.
package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

var required = []string{
	"meta.txt",
	"metrics.prom",
	"metrics.txt",
	"health.txt",
	"events.jsonl",
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: diagcheck <bundle.tar.gz | http://host/debug/bundle>")
		os.Exit(2)
	}
	if err := check(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "diagcheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

// open returns the bundle stream: a local file, or — when the
// argument is an http(s) URL, as in the smoke test hitting a live
// /debug/bundle — the response body.
func open(path string) (io.ReadCloser, error) {
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(path)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("HTTP %s", resp.Status)
		}
		return resp.Body, nil
	}
	return os.Open(path)
}

func check(path string) error {
	f, err := open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("not a gzip stream: %w", err)
	}
	defer gz.Close()

	sizes := map[string]int64{}
	var events []byte
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("corrupt tar: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return fmt.Errorf("reading %s: %w", hdr.Name, err)
		}
		sizes[hdr.Name] = int64(len(data))
		if hdr.Name == "events.jsonl" {
			events = data
		}
		if strings.HasSuffix(hdr.Name, ".error") {
			fmt.Printf("  (entry %s: %s)\n", hdr.Name, strings.TrimSpace(string(data)))
		}
	}

	var missing []string
	for _, name := range required {
		if n, ok := sizes[name]; !ok || n == 0 {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing or empty entries: %s", strings.Join(missing, ", "))
	}
	for i, line := range strings.Split(strings.TrimSpace(string(events)), "\n") {
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			return fmt.Errorf("events.jsonl line %d is not JSON: %v", i+1, err)
		}
	}
	fmt.Printf("diagcheck: OK (%d entries)\n", len(sizes))
	return nil
}
