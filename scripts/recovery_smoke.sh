#!/usr/bin/env bash
# Kill-restore smoke test: run the live pipeline with checkpointing
# enabled, SIGKILL it mid-replay (no shutdown hook gets to run), then
# restart against the same checkpoint directory. The second run must
# (a) report that it restored from the surviving checkpoint and
# (b) finish with closed accounting — every polled record decided,
# shed, or abandoned. This is the end-to-end recovery path; the
# bit-identity guarantees are covered by TestKillRestore* in
# internal/core.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/intddos" ./cmd/intddos

ckpt="$workdir/ckpt"
log1="$workdir/run1.log"
log2="$workdir/run2.log"

# First run: loop indefinitely (-live-for -1s), checkpointing often.
"$workdir/intddos" -live -scale tiny -packets 300 -live-for -1s \
    -checkpoint-dir "$ckpt" -checkpoint-every 500ms >"$log1" 2>&1 &
pid=$!

# Wait for at least one checkpoint to land, then let state accumulate
# a little past it so the kill loses genuinely un-checkpointed work.
ok=""
for _ in $(seq 1 120); do
    if ls "$ckpt"/ckpt-*.amck >/dev/null 2>&1; then ok=1; break; fi
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.5
done
if [ -z "$ok" ]; then
    echo "recovery-smoke: no checkpoint written before timeout" >&2
    kill -9 "$pid" 2>/dev/null || true
    sed 's/^/  run1: /' "$log1" >&2
    exit 1
fi
sleep 1
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

# Second run: one pass; must restore and close its accounting.
"$workdir/intddos" -live -scale tiny -packets 300 \
    -checkpoint-dir "$ckpt" -checkpoint-every 0 >"$log2" 2>&1

fail() {
    echo "recovery-smoke: $1" >&2
    sed 's/^/  run2: /' "$log2" >&2
    exit 1
}
grep -q "restored from" "$log2" || fail "restart did not restore from the checkpoint"
grep -q "accounting: CLOSED" "$log2" || fail "restored run did not close its accounting"
grep -q "final checkpoint:" "$log2" || fail "restored run did not write its final checkpoint"

echo "recovery-smoke: OK"
grep -E "restored from|accounting: CLOSED" "$log2" | sed 's/^/  /'
