// Benchmarks regenerating each of the paper's tables and figures,
// plus the design-choice ablations from DESIGN.md §6 and
// micro-benchmarks of the hot paths. Accuracy-style outcomes are
// attached to the benchmark output via b.ReportMetric, so a bench run
// doubles as a shape check.
package intddos

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/experiment"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs/prof"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/traffic"
)

// Shared fixtures: collected once, reused across benchmarks.
var (
	benchOnce    sync.Once
	benchCapture *Capture
	benchLive    *LiveResult
	benchLiveErr error
)

func benchSetup(b *testing.B) *Capture {
	b.Helper()
	benchOnce.Do(func() {
		c, err := Collect(DataConfig{Scale: ScaleTiny, Seed: 42})
		if err != nil {
			benchLiveErr = err
			return
		}
		benchCapture = c
	})
	if benchCapture == nil {
		b.Fatal(benchLiveErr)
	}
	return benchCapture
}

var liveOnce sync.Once

func benchLiveResult(b *testing.B) *LiveResult {
	b.Helper()
	liveOnce.Do(func() {
		benchLive, benchLiveErr = RunTableVI(LiveConfig{
			Scale: ScaleTiny, Seed: 42, PacketsPerType: 250,
		})
	})
	if benchLive == nil {
		b.Fatal(benchLiveErr)
	}
	return benchLive
}

// BenchmarkTableI_WorkloadGeneration measures building the full
// Table I workload (benign + 11 attack episodes).
func BenchmarkTableI_WorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := BuildWorkload(ScaleTiny, int64(i))
		if len(w.Records) == 0 {
			b.Fatal("empty workload")
		}
	}
}

// BenchmarkTableII_FeatureExtraction measures the Data Processor's
// per-observation feature pipeline over the capture's INT feed.
func BenchmarkTableII_FeatureExtraction(b *testing.B) {
	c := benchSetup(b)
	// Rebuild PacketInfo-like observations from the dataset rows is
	// lossy; instead re-run the flow table over synthetic packets.
	w := c.Workload
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := flow.NewTable()
		set := flow.INTFeatures()
		buf := make([]float64, 0, len(set))
		for r := range w.Records {
			rec := &w.Records[r]
			pi := flow.PacketInfo{
				Key: flow.Key{Src: rec.Src, Dst: rec.Dst, SrcPort: rec.SrcPort,
					DstPort: rec.DstPort, Proto: rec.Proto},
				Length: int(rec.Length), At: rec.At, HasTelemetry: true,
				IngressTS: netsim.Wrap32(rec.At),
			}
			st, _ := tbl.Observe(pi)
			buf = st.Features(buf[:0], set)
		}
	}
	b.ReportMetric(float64(len(w.Records)), "packets/op")
}

// benchTrainEval is the common Table III/IV model benchmark body.
func benchTrainEval(b *testing.B, data *ml.Dataset, specIdx int) {
	c := benchSetup(b)
	_ = c
	spec := StageOneModels()[specIdx]
	train, test := data.Split(0.1, 42)
	b.ResetTimer()
	var last EvalResult
	for i := 0; i < b.N; i++ {
		res, err := TrainEval(spec, train, test, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Scores.Accuracy, "accuracy")
	b.ReportMetric(last.Scores.F1, "F1")
}

// Table III: one bench per model family on the INT feed, plus RF on
// sFlow for the cross-source comparison.
func BenchmarkTableIII_INT_RF(b *testing.B)  { benchTrainEval(b, benchSetup(b).INT, 0) }
func BenchmarkTableIII_INT_GNB(b *testing.B) { benchTrainEval(b, benchSetup(b).INT, 1) }
func BenchmarkTableIII_INT_KNN(b *testing.B) { benchTrainEval(b, benchSetup(b).INT, 2) }
func BenchmarkTableIII_INT_NN(b *testing.B)  { benchTrainEval(b, benchSetup(b).INT, 3) }
func BenchmarkTableIII_SFlow_RF(b *testing.B) {
	benchTrainEval(b, benchSetup(b).SFlow, 0)
}

// BenchmarkTableIV_ZeroDaySplit measures the June-11 holdout
// experiment end to end for the RF model.
func BenchmarkTableIV_ZeroDaySplit(b *testing.B) {
	c := benchSetup(b)
	cut := c.DayCut(5)
	train, test := experiment.SplitAtTime(c.INT, cut)
	spec := StageOneModels()[0]
	b.ResetTimer()
	var last EvalResult
	for i := 0; i < b.N; i++ {
		res, err := TrainEval(spec, train, test, 42)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Scores.Accuracy, "accuracy")
}

// BenchmarkTableV_FeatureImportance measures the per-model importance
// computation (RF Gini + permutation for the rest).
func BenchmarkTableV_FeatureImportance(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := RunTableV(c, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTableVI_LiveDetection measures the full stage-2
// experiment: ensemble pre-training plus five live replays through
// the mechanism.
func BenchmarkTableVI_LiveDetection(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := RunTableVI(LiveConfig{Scale: ScaleTiny, Seed: 42, PacketsPerType: 250})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Type == SlowLoris {
				acc = r.Accuracy
			}
		}
	}
	b.ReportMetric(acc, "slowloris-accuracy")
}

// BenchmarkFigure3_4_ConfusionMatrices measures the Table III run
// that yields the RF confusion matrices.
func BenchmarkFigure3_4_ConfusionMatrices(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	var m ml.ConfusionMatrix
	for i := 0; i < b.N; i++ {
		res, err := RunTableIII(c, 42)
		if err != nil {
			b.Fatal(err)
		}
		m = res.RFConfusionINT
	}
	b.ReportMetric(m.Accuracy(), "rf-int-accuracy")
}

// BenchmarkFigure5_Timeline measures the timeline sweep (train RF per
// source, predict every observation, bucketize).
func BenchmarkFigure5_Timeline(b *testing.B) {
	c := benchSetup(b)
	b.ResetTimer()
	var fig *Figure5
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = RunFigure5(c, 240, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fig.CoverageOfType(fig.INT, SlowLoris)), "int-loris-rows")
	b.ReportMetric(float64(fig.CoverageOfType(fig.SFlow, SlowLoris)), "sflow-loris-rows")
}

// BenchmarkFigure7_DecisionStrips measures the per-flow decision
// post-processing behind Figure 7.
func BenchmarkFigure7_DecisionStrips(b *testing.B) {
	live := benchLiveResult(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if FormatFigure7(live, SlowLoris, 100) == "" || FormatFigure7(live, Benign, 100) == "" {
			b.Fatal("empty strip")
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblation_WrapAwareIAT contrasts wrap-aware and naive
// inter-arrival computation across a wrap boundary, reporting the
// error rate the naive version incurs.
func BenchmarkAblation_WrapAwareIAT(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"wrap-aware", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			flow.NaiveIAT = mode.naive
			defer func() { flow.NaiveIAT = false }()
			wrong := 0
			total := 0
			for i := 0; i < b.N; i++ {
				tbl := flow.NewTable()
				k := flow.Key{Proto: netsim.TCP, SrcPort: 1}
				// Packets spaced 1 s apart straddling wrap boundaries.
				for p := 0; p < 20; p++ {
					at := netsim.Time(p) * netsim.Second
					st, _ := tbl.Observe(flow.PacketInfo{
						Key: k, Length: 100, At: at, HasTelemetry: true,
						IngressTS: netsim.Wrap32(at),
					})
					if p > 0 {
						total++
						if st.IAT.Last() != float64(netsim.Second) {
							wrong++
						}
					}
				}
			}
			b.ReportMetric(float64(wrong)/float64(total), "iat-error-rate")
		})
	}
}

// BenchmarkAblation_EnsembleVsSingle contrasts the 2-of-3 ensemble
// against each single model on zero-day SlowLoris rows.
func BenchmarkAblation_EnsembleVsSingle(b *testing.B) {
	c := benchSetup(b)
	trainAll := experiment.DropType(c.INT, SlowLoris)
	base := trainAll.Subsample(20000, 42)
	var loris []int
	for i := range c.INT.X {
		if c.INT.Meta[i].Type == SlowLoris {
			loris = append(loris, i)
		}
	}
	scaler := &ml.StandardScaler{}
	Z, err := scaler.FitTransform(base.X)
	if err != nil {
		b.Fatal(err)
	}
	var models []ml.Classifier
	for _, spec := range StageTwoModels() {
		m := spec.New(42)
		if err := m.Fit(Z, base.Y); err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
	}
	score := func(vote func(x []float64) int) float64 {
		hit := 0
		for _, idx := range loris {
			if vote(scaler.TransformRow(nil, c.INT.X[idx])) == 1 {
				hit++
			}
		}
		return float64(hit) / float64(len(loris))
	}
	b.Run("ensemble-2of3", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc = score(func(x []float64) int {
				ones := 0
				for _, m := range models {
					ones += m.Predict(x)
				}
				if ones >= 2 {
					return 1
				}
				return 0
			})
		}
		b.ReportMetric(acc, "loris-detection")
	})
	for _, m := range models {
		m := m
		b.Run("single-"+m.Name(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc = score(m.Predict)
			}
			b.ReportMetric(acc, "loris-detection")
		})
	}
}

// BenchmarkAblation_SFlowRateSweep measures detection-relevant sample
// coverage across sampling rates (1/64 … 1/16384), the paper's core
// sampling-vs-coverage trade-off.
func BenchmarkAblation_SFlowRateSweep(b *testing.B) {
	for _, rate := range []int{64, 256, 1024, 4096, 16384} {
		b.Run(benchName(rate), func(b *testing.B) {
			var lorisRows, attackRows int
			for i := 0; i < b.N; i++ {
				c, err := Collect(DataConfig{Scale: ScaleTiny, Seed: 42, SFlowRate: rate})
				if err != nil {
					b.Fatal(err)
				}
				lorisRows, attackRows = 0, 0
				for r := range c.SFlow.X {
					if c.SFlow.Y[r] == 1 {
						attackRows++
						if c.SFlow.Meta[r].Type == SlowLoris {
							lorisRows++
						}
					}
				}
			}
			b.ReportMetric(float64(attackRows), "attack-samples")
			b.ReportMetric(float64(lorisRows), "loris-samples")
		})
	}
}

// BenchmarkAblation_INTSamplingOverhead contrasts full per-packet INT
// against PINT-style probabilistic instrumentation, reporting the
// telemetry byte overhead each adds to the wire.
func BenchmarkAblation_INTSamplingOverhead(b *testing.B) {
	w := BuildWorkload(ScaleTiny, 42)
	for _, mode := range []struct {
		name    string
		sampler telemetry.Sampler
	}{
		{"every-packet", nil},
		{"pint-p0.25", telemetry.NewProbabilistic(0.25, 42)},
		{"pint-p0.05", telemetry.NewProbabilistic(0.05, 42)},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var overhead int64
			var reports int
			for i := 0; i < b.N; i++ {
				tb := NewTestbed(TestbedConfig{INTSampler: mode.sampler})
				rp := tb.Replayer(w.Records)
				rp.Start()
				tb.Run()
				overhead = tb.INTAgent.OverheadB
				reports = tb.INTAgent.Reports
			}
			b.ReportMetric(float64(overhead), "telemetry-bytes")
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkAblation_FlowEviction contrasts flow-table memory with and
// without idle eviction under spoofed-flood flow churn.
func BenchmarkAblation_FlowEviction(b *testing.B) {
	w := BuildWorkload(ScaleTiny, 42)
	for _, mode := range []struct {
		name    string
		timeout netsim.Time
	}{{"no-eviction", 0}, {"idle-50ms", 50 * netsim.Millisecond}} {
		b.Run(mode.name, func(b *testing.B) {
			var peak int
			for i := 0; i < b.N; i++ {
				tbl := flow.NewTable()
				tbl.IdleTimeout = mode.timeout
				lastSweep := netsim.Time(0)
				peak = 0
				for r := range w.Records {
					rec := &w.Records[r]
					tbl.Observe(flow.PacketInfo{
						Key: flow.Key{Src: rec.Src, Dst: rec.Dst, SrcPort: rec.SrcPort,
							DstPort: rec.DstPort, Proto: rec.Proto},
						Length: int(rec.Length), At: rec.At,
					})
					if rec.At-lastSweep > 20*netsim.Millisecond {
						tbl.Sweep(rec.At)
						lastSweep = rec.At
					}
					if tbl.Len() > peak {
						peak = tbl.Len()
					}
				}
			}
			b.ReportMetric(float64(peak), "peak-flows")
		})
	}
}

// BenchmarkAblation_EmbedVsPostcard contrasts INT-MD embedding with
// INT-XD postcard export: wire overhead on data packets versus report
// volume at the collector.
func BenchmarkAblation_EmbedVsPostcard(b *testing.B) {
	w := BuildWorkload(ScaleTiny, 42)
	for _, mode := range []struct {
		name string
		mode telemetry.Mode
	}{{"embed-intmd", telemetry.ModeEmbed}, {"postcard-intxd", telemetry.ModePostcard}} {
		b.Run(mode.name, func(b *testing.B) {
			var overhead int64
			var reports int
			for i := 0; i < b.N; i++ {
				tb := NewTestbed(TestbedConfig{INTMode: mode.mode})
				rp := tb.Replayer(w.Records)
				rp.Start()
				tb.Run()
				overhead = tb.INTAgent.OverheadB
				reports = tb.INTAgent.Reports
			}
			b.ReportMetric(float64(overhead), "in-packet-bytes")
			b.ReportMetric(float64(reports), "reports")
		})
	}
}

// BenchmarkStorage_ReportLog measures archival cost per report — the
// §V storage discussion (AmLight telemetry is ~30 GB/minute at 80 M
// packets/minute, i.e. ~375 B/packet end to end) — for the full and
// the deployed three-field instruction sets.
func BenchmarkStorage_ReportLog(b *testing.B) {
	reports := make([]*telemetry.Report, 0, 1000)
	tb := NewTestbed(TestbedConfig{})
	tb.Collector.OnReport = func(r *telemetry.Report, _ netsim.Time) {
		if len(reports) < cap(reports) {
			reports = append(reports, r)
		}
	}
	w := BuildWorkload(ScaleTiny, 42)
	rp := tb.Replayer(w.Records)
	rp.MaxPackets = 1200
	rp.Start()
	tb.Run()
	if len(reports) == 0 {
		b.Fatal("no reports")
	}
	for _, mode := range []struct {
		name string
		inst telemetry.Instruction
	}{
		{"full-instructions", telemetry.InstAll},
		{"deployed-3-fields", telemetry.InstQueue | telemetry.InstIngressTS | telemetry.InstEgressTS},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var bpr float64
			for i := 0; i < b.N; i++ {
				var sink countingWriter
				l, err := telemetry.NewReportLog(&sink, mode.inst)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range reports {
					if err := l.Append(r); err != nil {
						b.Fatal(err)
					}
				}
				l.Flush()
				bpr = l.BytesPerReport()
			}
			b.ReportMetric(bpr, "bytes/report")
		})
	}
}

// countingWriter discards bytes while counting them.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

// --- Micro-benchmarks of hot paths ---

// BenchmarkINTReportEncodeDecode measures the sink→collector wire
// round trip.
func BenchmarkINTReportEncodeDecode(b *testing.B) {
	r := &telemetry.Report{
		Seq: 1, Src: traffic.ServerAddr, Dst: traffic.ServerAddr,
		SrcPort: 1, DstPort: 80, Proto: netsim.TCP, Length: 1500,
		Hops: []telemetry.HopMetadata{
			{SwitchID: 1, IngressTS: 100, EgressTS: 200, QueueDepth: 5},
			{SwitchID: 1, IngressTS: 300, EgressTS: 400, QueueDepth: 2},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := r.Encode(telemetry.InstAll)
		if _, err := telemetry.DecodeReport(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowTableObserve measures single-observation flow-table
// update cost.
func BenchmarkFlowTableObserve(b *testing.B) {
	tbl := flow.NewTable()
	pi := flow.PacketInfo{
		Key:    flow.Key{Src: traffic.ServerAddr, Dst: traffic.ServerAddr, SrcPort: 1, DstPort: 80, Proto: netsim.TCP},
		Length: 1500, HasTelemetry: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi.At = netsim.Time(i)
		pi.IngressTS = netsim.Wrap32(pi.At)
		tbl.Observe(pi)
	}
}

// BenchmarkMechanismIngest measures the end-to-end per-report cost of
// the automated mechanism's ingest path (flow table + DB snapshot).
func BenchmarkMechanismIngest(b *testing.B) {
	c := benchSetup(b)
	spec := StageOneModels()[0]
	train, _ := c.INT.Split(0.1, 42)
	model, scaler, err := FitModel(spec, train.Subsample(5000, 42), 42)
	if err != nil {
		b.Fatal(err)
	}
	tb := NewTestbed(TestbedConfig{})
	mech, err := NewMechanism(tb, MechanismConfig{
		Models: []Classifier{model}, Scaler: scaler,
	})
	if err != nil {
		b.Fatal(err)
	}
	pi := flow.PacketInfo{
		Key:    flow.Key{Src: traffic.ServerAddr, Dst: traffic.ServerAddr, SrcPort: 9, DstPort: 80, Proto: netsim.TCP},
		Length: 777, HasTelemetry: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi.At = netsim.Time(i)
		mech.Observe(pi)
	}
}

// BenchmarkLivePipeline_Latency measures the wall-clock concurrent
// runtime end to end: per-iteration cost of ingesting one observation
// into the running pipeline, with the stage/prediction latency
// percentiles from the obs registry attached via b.ReportMetric.
// When BENCH_OBS_OUT names a file, the full latency snapshot is also
// written there as JSON (see `make bench-obs`).
func BenchmarkLivePipeline_Latency(b *testing.B) {
	c := benchSetup(b)
	train, _ := c.INT.Split(0.1, 42)
	model, scaler, err := FitModel(StageTwoModels()[1], train.Subsample(20000, 42), 42)
	if err != nil {
		b.Fatal(err)
	}
	reg := NewObsRegistry()
	live, err := NewLiveRuntime(LiveRuntimeConfig{
		Models: []Classifier{model}, Scaler: scaler, Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	live.Start()
	defer live.Stop()

	pi := flow.PacketInfo{
		Key:    flow.Key{Src: traffic.ServerAddr, Dst: traffic.ServerAddr, DstPort: 80, Proto: netsim.TCP},
		Length: 777, HasTelemetry: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Leave pi.At zero: the live runtime stamps wall-clock arrival
		// itself, which keeps journal-wait measurements meaningful.
		pi.Key.SrcPort = uint16(i % 512) // spread load over flows
		live.Ingest(pi)
	}
	b.StopTimer()
	// Drain: the poller coalesces updates per flow, so wait for the
	// journal and queue to empty rather than for b.N decisions.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if live.DB.JournalLen() == 0 && int(live.Predictions.Load())+int(live.Shed.Load()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	snap := live.MetricsSnapshot()
	if h, ok := snap.Histogram("intddos_predict_latency_seconds"); ok && h.Count > 0 {
		b.ReportMetric(h.Quantile(0.50)*1e3, "p50-ms")
		b.ReportMetric(h.Quantile(0.95)*1e3, "p95-ms")
		b.ReportMetric(h.Quantile(0.99)*1e3, "p99-ms")
		b.ReportMetric(h.Max*1e3, "max-ms")
	}
	writeBenchObs(b, snap)
}

// writeBenchObs dumps the latency histograms of a metrics snapshot as
// JSON when the BENCH_OBS_OUT environment variable names a file.
func writeBenchObs(b *testing.B, snap ObsSnapshot) {
	path := os.Getenv("BENCH_OBS_OUT")
	if path == "" {
		return
	}
	type histJSON struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50_s"`
		P95   float64 `json:"p95_s"`
		P99   float64 `json:"p99_s"`
		Max   float64 `json:"max_s"`
		Mean  float64 `json:"mean_s"`
	}
	out := struct {
		Bench      string              `json:"bench"`
		When       string              `json:"when"`
		Histograms map[string]histJSON `json:"histograms"`
		Counters   map[string]int64    `json:"counters"`
	}{
		Bench:      b.Name(),
		When:       time.Now().UTC().Format(time.RFC3339),
		Histograms: map[string]histJSON{},
		Counters:   snap.Counters,
	}
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		out.Histograms[name] = histJSON{
			Count: h.Count,
			P50:   h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Max: h.Max, Mean: h.Mean(),
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote latency snapshot to %s", path)
}

// benchName formats a sampling rate sub-benchmark name.
func benchName(rate int) string {
	switch rate {
	case 64:
		return "rate-1in64"
	case 256:
		return "rate-1in256"
	case 1024:
		return "rate-1in1024"
	case 4096:
		return "rate-1in4096"
	default:
		return "rate-1in16384"
	}
}

// shardBenchResult is one BenchmarkShardScaling configuration's
// outcome, accumulated across sub-benchmarks and dumped as
// BENCH_shard.json (see `make bench-shard`).
type shardBenchResult struct {
	Shards       int     `json:"shards"` // 0 = legacy single-lock DB
	Workers      int     `json:"workers"`
	NsPerIngest  float64 `json:"ns_per_ingest"`
	IngestPerSec float64 `json:"ingest_per_sec"`
	Predictions  int64   `json:"predictions"`
	Shed         int64   `json:"shed"`
	// Contention counters are true deltas across the driven interval
	// (snapshot before traffic, snapshot after drain), split by
	// serialization point: the shard upsert mutexes, the shared
	// prediction log, and the flow table stripes.
	Contention        int64   `json:"lock_contention"`
	PredLogContention int64   `json:"predlog_contention"`
	FlowContention    int64   `json:"flow_table_contention"`
	Imbalance         float64 `json:"shard_imbalance"`
}

var (
	shardBenchMu      sync.Mutex
	shardBenchResults []shardBenchResult
	// shardBenchAttrib is the sweep-wide contention attribution (mutex +
	// block profile deltas since the benchmark enabled profiling),
	// refreshed after every sub-benchmark so the final BENCH_shard.json
	// carries the full picture.
	shardBenchAttrib *prof.Report
)

// BenchmarkShardScaling sweeps the sharded pipeline across
// shard×worker configurations, driving the multi-producer ingest
// demux from parallel goroutines — the contention profile the
// striping and the per-shard journal-append goroutines exist to fix.
// The timed region covers accepted→journaled: RunParallel fans
// observations into the per-shard ingest queues and the timer stops
// only once the ingesters have drained the backlog, so ns_per_ingest
// is the end-to-end data-path rate, not the cost of a channel send.
// The shards=0 row is the paper-faithful single-lock baseline. On a
// single-core host the sweep mainly shows the striping costs nothing;
// the throughput separation appears with 4+ cores.
func BenchmarkShardScaling(b *testing.B) {
	c := benchSetup(b)
	train, _ := c.INT.Split(0.1, 42)
	model, scaler, err := FitModel(StageTwoModels()[1], train.Subsample(20000, 42), 42)
	if err != nil {
		b.Fatal(err)
	}
	// Dense mutex/block sampling for the sweep: the point of this
	// benchmark is finding the serialization points, so sampling noise
	// matters more than the (small) profiling overhead.
	restoreProf := prof.EnableRates(2, 2000)
	defer restoreProf()
	attribBase := prof.Attribution(0, nil)

	configs := []struct{ shards, workers int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 4}, {8, 8},
	}
	for _, cfg := range configs {
		name := "legacy"
		if cfg.shards > 0 {
			name = benchShardName(cfg.shards, cfg.workers)
		}
		b.Run(name, func(b *testing.B) {
			reg := NewObsRegistry()
			live, err := NewLiveRuntime(LiveRuntimeConfig{
				Models: []Classifier{model}, Scaler: scaler, Registry: reg,
				Shards: cfg.shards, Workers: cfg.workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			live.Start()
			defer live.Stop()

			// Baseline the contention counters after startup so the
			// recorded values are the delta the driven traffic caused.
			pre := live.MetricsSnapshot()

			b.ReportAllocs()
			b.SetParallelism(4) // contend even on a single-core host
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				pi := flow.PacketInfo{
					Key:    flow.Key{Src: traffic.ServerAddr, Dst: traffic.ServerAddr, DstPort: 80, Proto: netsim.TCP},
					Length: 777, HasTelemetry: true,
				}
				i := 0
				for pb.Next() {
					pi.Key.SrcPort = uint16(i % 512) // spread load over flows/shards
					live.IngestAsync(pi)
					i++
				}
			})
			// Keep the clock running until every accepted observation is
			// journaled: the demux alone isn't the pipeline.
			for live.IngestBacklog() > 0 {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

			// Drain briefly so prediction-side counters are meaningful.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if live.DB.JournalLen() == 0 && int(live.Predictions.Load())+int(live.Shed.Load()) > 0 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}

			snap := live.MetricsSnapshot()
			delta := func(name string) int64 { return snap.Counters[name] - pre.Counters[name] }
			res := shardBenchResult{
				Shards: cfg.shards, Workers: cfg.workers,
				NsPerIngest:       nsPerOp,
				IngestPerSec:      1e9 / nsPerOp,
				Predictions:       int64(live.Predictions.Load()),
				Shed:              int64(live.Shed.Load()),
				Contention:        delta("intddos_store_lock_contention_total"),
				PredLogContention: delta("intddos_store_predlog_contention_total"),
				FlowContention:    delta("intddos_flow_table_contention_total"),
				Imbalance:         snap.Gauges["intddos_store_shard_imbalance"],
			}
			b.ReportMetric(res.IngestPerSec, "ingest/sec")
			if res.Imbalance > 0 {
				b.ReportMetric(res.Imbalance, "imbalance")
			}
			// The harness runs each sub-benchmark more than once (the
			// N=1 sizing pass first); keep only the latest result per
			// configuration.
			shardBenchMu.Lock()
			replaced := false
			for i := range shardBenchResults {
				if shardBenchResults[i].Shards == res.Shards && shardBenchResults[i].Workers == res.Workers {
					shardBenchResults[i] = res
					replaced = true
					break
				}
			}
			if !replaced {
				shardBenchResults = append(shardBenchResults, res)
			}
			shardBenchAttrib = prof.Diff(attribBase, prof.Attribution(0, nil))
			writeShardBench(b, shardBenchResults)
			shardBenchMu.Unlock()
		})
	}
}

// benchShardName formats a shard/worker sub-benchmark name.
func benchShardName(shards, workers int) string {
	return fmt.Sprintf("shards-%d-w%d", shards, workers)
}

// writeShardBench rewrites the accumulated sweep as JSON when the
// BENCH_SHARD_OUT environment variable names a file (caller holds
// shardBenchMu).
func writeShardBench(b *testing.B, results []shardBenchResult) {
	path := os.Getenv("BENCH_SHARD_OUT")
	if path == "" {
		return
	}
	type attribJSON struct {
		MutexFraction int        `json:"mutex_fraction"`
		BlockRateNs   int        `json:"block_rate_ns"`
		Stages        []prof.Row `json:"stages"`
		TopStacks     []prof.Row `json:"top_stacks"`
	}
	out := struct {
		Bench       string             `json:"bench"`
		When        string             `json:"when"`
		Results     []shardBenchResult `json:"results"`
		Attribution *attribJSON        `json:"contention_attribution,omitempty"`
	}{
		Bench:   "BenchmarkShardScaling",
		When:    time.Now().UTC().Format(time.RFC3339),
		Results: results,
	}
	if shardBenchAttrib != nil {
		out.Attribution = &attribJSON{
			MutexFraction: shardBenchAttrib.MutexFraction,
			BlockRateNs:   shardBenchAttrib.BlockRateNs,
			Stages:        shardBenchAttrib.StageTotals(),
			TopStacks:     shardBenchAttrib.Top(10),
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Checkpoint benchmark: snapshot capture/encode/write and restore cost
// as the live pipeline's durable state grows.

type ckptBenchResult struct {
	Flows         int     `json:"flows"`
	Bytes         int     `json:"bytes"`
	WriteNsPerOp  float64 `json:"write_ns_per_op"`
	WriteMBPerSec float64 `json:"write_mb_per_sec"`
	BarrierNs     int64   `json:"barrier_ns"`
	RestoreNs     float64 `json:"restore_ns"`
	RestoredFlows int     `json:"restored_flows"`
}

var (
	ckptBenchMu      sync.Mutex
	ckptBenchResults []ckptBenchResult
)

// BenchmarkCheckpoint measures WriteCheckpoint (barrier + export +
// encode + atomic write) and the cold-boot restore path at 10k, 100k,
// and 1M resident flows. The journal is drained first, so the
// snapshot reflects a steady-state pipeline (tables + store + windows)
// rather than a backlog. Results are also written as JSON when
// BENCH_CHECKPOINT_OUT names a file (`make bench-checkpoint`).
func BenchmarkCheckpoint(b *testing.B) {
	c := benchSetup(b)
	train, _ := c.INT.Split(0.1, 42)
	model, scaler, err := FitModel(StageTwoModels()[1], train.Subsample(10000, 42), 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, nFlows := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("flows-%d", nFlows), func(b *testing.B) {
			dir := b.TempDir()
			mkCfg := func() LiveRuntimeConfig {
				return LiveRuntimeConfig{
					Models: []Classifier{model}, Scaler: scaler,
					Shards: 4, Workers: 2,
					CheckpointDir: dir, CheckpointKeep: 1,
				}
			}
			live, err := NewLiveRuntime(mkCfg())
			if err != nil {
				b.Fatal(err)
			}
			pi := flow.PacketInfo{
				Key:    flow.Key{Dst: traffic.ServerAddr, DstPort: 80, Proto: netsim.TCP},
				Length: 777, HasTelemetry: true,
			}
			for i := 0; i < nFlows; i++ {
				pi.Key.Src = netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
				pi.Key.SrcPort = uint16(i%32768 + 1024)
				live.Ingest(pi)
			}
			// Drain the journal: a running pipeline's pollers trim it
			// continuously, so steady state is an empty tail.
			for s := 0; s < 4; s++ {
				_, cur := live.DB.PollShard(s, 0, 0)
				live.DB.TrimShard(s, cur)
			}
			// Reclaim the ingest garbage (drained journal entries,
			// append-growth) before timing: the write path's large
			// copies then land in warm recycled spans instead of
			// faulting in fresh pages, which is what a long-running
			// pipeline's heap looks like.
			runtime.GC()
			// One untimed warm-up checkpoint: the production pipeline
			// checkpoints periodically, and from the second write on
			// the capture reuses the previous snapshot's arrays and
			// the encoder reuses its section buffers. Steady state —
			// not the first-ever checkpoint — is what the pause and
			// throughput targets are about.
			if _, _, err := live.WriteCheckpoint(); err != nil {
				b.Fatal(err)
			}

			var size int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, n, err := live.WriteCheckpoint()
				if err != nil {
					b.Fatal(err)
				}
				size = n
			}
			b.StopTimer()
			writeNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			barrierNs := live.LastCheckpointBarrier().Nanoseconds()

			// A real restore runs in a freshly booted process with an
			// empty heap. Drop the writer pipeline (tables, store,
			// capture scratch) before timing, or the restore's
			// allocations pay for GC marking the old pipeline's
			// gigabytes too.
			live = nil
			runtime.GC()

			restoreStart := time.Now()
			restoredLive, err := NewLiveRuntime(mkCfg())
			if err != nil {
				b.Fatal(err)
			}
			restoreNs := float64(time.Since(restoreStart).Nanoseconds())
			sum := restoredLive.Restore()
			if sum == nil || sum.Flows != nFlows {
				b.Fatalf("restore came back with %+v, want %d flows", sum, nFlows)
			}

			res := ckptBenchResult{
				Flows:         nFlows,
				Bytes:         size,
				WriteNsPerOp:  writeNs,
				WriteMBPerSec: float64(size) / (writeNs / 1e9) / (1 << 20),
				BarrierNs:     barrierNs,
				RestoreNs:     restoreNs,
				RestoredFlows: sum.Flows,
			}
			b.ReportMetric(float64(size), "bytes")
			b.ReportMetric(res.WriteMBPerSec, "MB/s")
			b.ReportMetric(float64(barrierNs)/1e6, "barrier-ms")
			b.ReportMetric(restoreNs/1e6, "restore-ms")

			ckptBenchMu.Lock()
			replaced := false
			for i := range ckptBenchResults {
				if ckptBenchResults[i].Flows == res.Flows {
					ckptBenchResults[i] = res
					replaced = true
					break
				}
			}
			if !replaced {
				ckptBenchResults = append(ckptBenchResults, res)
			}
			writeCkptBench(b, ckptBenchResults)
			ckptBenchMu.Unlock()
		})
	}
}

// writeCkptBench rewrites the accumulated checkpoint sweep as JSON
// when BENCH_CHECKPOINT_OUT names a file (caller holds ckptBenchMu).
func writeCkptBench(b *testing.B, results []ckptBenchResult) {
	path := os.Getenv("BENCH_CHECKPOINT_OUT")
	if path == "" {
		return
	}
	out := struct {
		Bench   string            `json:"bench"`
		When    string            `json:"when"`
		Results []ckptBenchResult `json:"results"`
	}{
		Bench:   "BenchmarkCheckpoint",
		When:    time.Now().UTC().Format(time.RFC3339),
		Results: results,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
