// Benchmarks for the batched-inference contract: per-model
// PredictBatch throughput against the sequential sample loop, the
// ensemble scoring sweep across micro-batch sizes, and the live
// runtime under each LiveConfig.PredictBatch setting. Results
// accumulate into BENCH_batch.json when BENCH_BATCH_OUT names a file
// (see `make bench-batch`).
package intddos

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/traffic"
)

// batchFixture is the shared scoring workload: the stage-2 ensemble
// plus a KNN, one shared scaler, and a block of raw test rows.
type batchFixture struct {
	ensemble []Classifier // MLP, RF, GNB — the Table VI members
	knn      Classifier
	scaler   *StandardScaler
	rows     [][]float64 // raw (unscaled) feature rows
	scaled   [][]float64 // pre-scaled copy for the per-model benches
}

var (
	batchFixOnce sync.Once
	batchFix     *batchFixture
	batchFixErr  error
)

func batchSetup(b *testing.B) *batchFixture {
	b.Helper()
	batchFixOnce.Do(func() {
		c, err := Collect(DataConfig{Scale: ScaleTiny, Seed: 42})
		if err != nil {
			batchFixErr = err
			return
		}
		train, test := c.INT.Split(0.1, 42)
		base := train.Subsample(20000, 42)
		scaler := &StandardScaler{}
		Z, err := scaler.FitTransform(base.X)
		if err != nil {
			batchFixErr = err
			return
		}
		fix := &batchFixture{scaler: scaler}
		for _, spec := range StageTwoModels() {
			m := spec.New(42)
			if err := m.Fit(Z, base.Y); err != nil {
				batchFixErr = err
				return
			}
			fix.ensemble = append(fix.ensemble, m)
		}
		// KNN trains on the paper's heavy subsample; prediction cost is
		// what the batch path amortizes.
		knnBase := train.Subsample(3000, 42)
		kZ := scaler.Transform(knnBase.X)
		km := StageOneModels()[2].New(42)
		if err := km.Fit(kZ, knnBase.Y); err != nil {
			batchFixErr = err
			return
		}
		fix.knn = km
		n := len(test.X)
		if n > 2048 {
			n = 2048
		}
		fix.rows = test.X[:n]
		fix.scaled = scaler.Transform(fix.rows)
		batchFix = fix
	})
	if batchFix == nil {
		b.Fatal(batchFixErr)
	}
	return batchFix
}

// BenchmarkPredictBatch contrasts every model family's amortized batch
// path against the reference sample loop on the same pre-scaled rows.
func BenchmarkPredictBatch(b *testing.B) {
	fix := batchSetup(b)
	models := append([]Classifier{}, fix.ensemble...)
	models = append(models, fix.knn)
	for _, m := range models {
		m := m
		bc := m.(ml.BatchClassifier)
		rows := float64(len(fix.scaled))
		b.Run(m.Name()+"/sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ml.SequentialPredict(m, fix.scaled)
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
		b.Run(m.Name()+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.PredictBatch(fix.scaled)
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// batchBenchResult is one sweep configuration's outcome. Speedup is
// computed against the same scope's batch=1 row when the JSON is
// written.
type batchBenchResult struct {
	Scope      string  `json:"scope"` // "ensemble" or "live"
	Batch      int     `json:"batch"`
	NsPerRow   float64 `json:"ns_per_row"`
	RowsPerSec float64 `json:"rows_per_sec"`
	SpeedupVs1 float64 `json:"speedup_vs_batch1,omitempty"`
	// Live-sweep extras.
	IngestPerSec  float64 `json:"ingest_per_sec,omitempty"`
	MeanBatchSize float64 `json:"mean_batch_size,omitempty"`
	SampleP50s    float64 `json:"sample_p50_s,omitempty"`
	Predictions   int64   `json:"predictions,omitempty"`
}

var (
	batchBenchMu      sync.Mutex
	batchBenchResults []batchBenchResult
)

// recordBatchBench keeps the latest result per (scope, batch) — the
// harness reruns each sub-benchmark after the N=1 sizing pass — and
// rewrites the JSON artifact.
func recordBatchBench(b *testing.B, res batchBenchResult) {
	batchBenchMu.Lock()
	defer batchBenchMu.Unlock()
	replaced := false
	for i := range batchBenchResults {
		if batchBenchResults[i].Scope == res.Scope && batchBenchResults[i].Batch == res.Batch {
			batchBenchResults[i] = res
			replaced = true
			break
		}
	}
	if !replaced {
		batchBenchResults = append(batchBenchResults, res)
	}
	writeBatchBench(b, batchBenchResults)
}

// writeBatchBench rewrites the accumulated sweep as JSON when the
// BENCH_BATCH_OUT environment variable names a file (caller holds
// batchBenchMu).
func writeBatchBench(b *testing.B, results []batchBenchResult) {
	path := os.Getenv("BENCH_BATCH_OUT")
	if path == "" {
		return
	}
	base := map[string]float64{}
	for _, r := range results {
		if r.Batch == 1 {
			base[r.Scope] = r.RowsPerSec
		}
	}
	out := struct {
		Bench   string             `json:"bench"`
		When    string             `json:"when"`
		Results []batchBenchResult `json:"results"`
	}{
		Bench: "BenchmarkEnsembleBatchScaling+BenchmarkLiveBatchScaling",
		When:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, r := range results {
		if b1 := base[r.Scope]; b1 > 0 && r.Batch != 1 {
			r.SpeedupVs1 = r.RowsPerSec / b1
		}
		out.Results = append(out.Results, r)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEnsembleBatchScaling sweeps the full scoring pipeline —
// standardization plus 2-of-3 ensemble votes — across micro-batch
// sizes. batch-1 is the true record-at-a-time path (TransformRow and
// per-model Predict), not PredictBatch with unit slices, so the sweep
// measures exactly what the live pipeline trades.
func BenchmarkEnsembleBatchScaling(b *testing.B) {
	fix := batchSetup(b)
	width := len(fix.rows[0])
	for _, k := range []int{1, 8, 32, 128} {
		k := k
		b.Run(fmt.Sprintf("batch-%d", k), func(b *testing.B) {
			b.ReportAllocs()
			if k == 1 {
				scaled := make([]float64, width)
				for i := 0; i < b.N; i++ {
					for _, row := range fix.rows {
						fix.scaler.TransformRow(scaled, row)
						ones := 0
						for _, m := range fix.ensemble {
							ones += m.Predict(scaled)
						}
						_ = ones
					}
				}
			} else {
				var dst [][]float64
				for i := 0; i < b.N; i++ {
					for lo := 0; lo < len(fix.rows); lo += k {
						hi := lo + k
						if hi > len(fix.rows) {
							hi = len(fix.rows)
						}
						dst = fix.scaler.TransformBatch(dst, fix.rows[lo:hi])
						ml.EnsembleVotes(fix.ensemble, dst)
					}
				}
			}
			rows := float64(len(fix.rows)) * float64(b.N)
			perSec := rows / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "rows/sec")
			recordBatchBench(b, batchBenchResult{
				Scope: "ensemble", Batch: k,
				NsPerRow:   float64(b.Elapsed().Nanoseconds()) / rows,
				RowsPerSec: perSec,
			})
		})
	}
}

// BenchmarkLiveBatchScaling sweeps LiveConfig.PredictBatch over the
// wall-clock runtime: parallel ingest keeps the worker's queue full so
// micro-batches actually form, and the per-sample scoring histogram
// shows the amortization the batch path buys end to end.
func BenchmarkLiveBatchScaling(b *testing.B) {
	fix := batchSetup(b)
	for _, k := range []int{1, 8, 32, 128} {
		k := k
		b.Run(fmt.Sprintf("batch-%d", k), func(b *testing.B) {
			reg := NewObsRegistry()
			live, err := NewLiveRuntime(LiveRuntimeConfig{
				Models: fix.ensemble, Scaler: fix.scaler, Registry: reg,
				PredictBatch: k,
			})
			if err != nil {
				b.Fatal(err)
			}
			live.Start()
			defer live.Stop()

			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				pi := flow.PacketInfo{
					Key:    flow.Key{Src: traffic.ServerAddr, Dst: traffic.ServerAddr, DstPort: 80, Proto: netsim.TCP},
					Length: 777, HasTelemetry: true,
				}
				i := 0
				for pb.Next() {
					pi.Key.SrcPort = uint16(i % 512) // spread load over flows
					live.Ingest(pi)
					i++
				}
			})
			b.StopTimer()
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

			// Drain so the scoring-side histograms are meaningful.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if live.DB.JournalLen() == 0 && int(live.Predictions.Load())+int(live.Shed.Load()) > 0 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}

			snap := live.MetricsSnapshot()
			res := batchBenchResult{
				Scope: "live", Batch: k,
				IngestPerSec: 1e9 / nsPerOp,
				Predictions:  int64(live.Predictions.Load()),
			}
			if h, ok := snap.Histogram("intddos_predict_batch_size"); ok && h.Count > 0 {
				res.MeanBatchSize = h.Mean()
				b.ReportMetric(h.Mean(), "mean-batch")
			}
			if h, ok := snap.Histogram("intddos_predict_sample_seconds"); ok && h.Count > 0 {
				res.SampleP50s = h.Quantile(0.50)
				res.NsPerRow = h.Mean() * 1e9
				if h.Mean() > 0 {
					res.RowsPerSec = 1 / h.Mean()
				}
				b.ReportMetric(h.Quantile(0.50)*1e6, "sample-p50-us")
			}
			b.ReportMetric(res.IngestPerSec, "ingest/sec")
			recordBatchBench(b, res)
		})
	}
}
