package intddos

import (
	"strings"
	"sync"
	"testing"
)

// Facade-level tests exercise the public API end to end at tiny
// scale; the -short flag skips the heavier small-scale integration
// test that asserts the paper's headline shapes.

var (
	facadeOnce sync.Once
	facadeCap  *Capture
	facadeErr  error
)

func facadeCapture(t *testing.T) *Capture {
	t.Helper()
	facadeOnce.Do(func() {
		facadeCap, facadeErr = Collect(DataConfig{Scale: ScaleTiny, Seed: 42})
	})
	if facadeCap == nil {
		t.Fatal(facadeErr)
	}
	return facadeCap
}

func TestFacadeBuildWorkload(t *testing.T) {
	w := BuildWorkload(ScaleTiny, 1)
	if len(w.Records) == 0 {
		t.Fatal("empty workload")
	}
	if len(w.Schedule) != 11 {
		t.Errorf("schedule = %d episodes", len(w.Schedule))
	}
	counts := w.CountByType()
	for _, typ := range []string{Benign, SYNScan, UDPScan, SYNFlood, SlowLoris} {
		if counts[typ] == 0 {
			t.Errorf("no %s traffic", typ)
		}
	}
}

func TestFacadePaperSchedule(t *testing.T) {
	s := PaperSchedule(Second, Millisecond)
	if len(s) != 11 {
		t.Fatalf("episodes = %d", len(s))
	}
	if s.ActiveAt(s[0].Start) != s[0].Type {
		t.Error("ActiveAt broken through facade")
	}
}

func TestFacadeFeatureSets(t *testing.T) {
	if len(INTFeatures()) != 15 {
		t.Errorf("INT features = %d", len(INTFeatures()))
	}
	if len(SFlowFeatures()) != 12 {
		t.Errorf("sFlow features = %d", len(SFlowFeatures()))
	}
}

func TestFacadeSamplingRates(t *testing.T) {
	for _, scale := range []string{ScaleTiny, ScaleSmall, ScaleFull} {
		if TablesSFlowRate(scale) >= CoverageSFlowRate(scale) {
			t.Errorf("%s: tables rate %d not below coverage rate %d",
				scale, TablesSFlowRate(scale), CoverageSFlowRate(scale))
		}
	}
}

func TestFacadeCollectAndModels(t *testing.T) {
	c := facadeCapture(t)
	if c.INT.Len() == 0 || c.SFlow.Len() == 0 {
		t.Fatal("empty datasets")
	}
	if len(StageOneModels()) != 4 || len(StageTwoModels()) != 3 {
		t.Error("model zoo sizes wrong")
	}
	train, test := c.INT.Split(0.1, 42)
	res, err := TrainEval(StageOneModels()[0], train, test, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores.Accuracy < 0.97 {
		t.Errorf("facade RF accuracy = %v", res.Scores.Accuracy)
	}
}

func TestFacadeMechanism(t *testing.T) {
	c := facadeCapture(t)
	train, _ := c.INT.Split(0.1, 42)
	model, scaler, err := FitModel(StageOneModels()[0], train.Subsample(5000, 42), 42)
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(TestbedConfig{})
	mech, err := NewMechanism(tb, MechanismConfig{
		Models: []Classifier{model},
		Scaler: scaler,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Collector.OnReport = mech.HandleReport
	mech.Start()
	rp := tb.Replayer(c.Workload.Records[:2000])
	rp.Start()
	for tb.Eng.Pending() > 0 && len(mech.Decisions) < 2000 {
		tb.RunUntil(tb.Eng.Now() + Second)
	}
	if len(mech.Decisions) != 2000 {
		t.Fatalf("decisions = %d, want 2000", len(mech.Decisions))
	}
	correct := 0
	for _, d := range mech.Decisions {
		if d.Correct() {
			correct++
		}
	}
	if frac := float64(correct) / 2000; frac < 0.9 {
		t.Errorf("live accuracy = %v", frac)
	}
}

func TestFacadeMitigationFlow(t *testing.T) {
	gen := NewRuleGenerator(MitigateConfig{SourceThreshold: 2})
	w := BuildWorkload(ScaleTiny, 42)
	// Flag the first ten synscan packets as attacks.
	n := 0
	for i := range w.Records {
		r := &w.Records[i]
		if r.AttackType != SYNScan {
			continue
		}
		key := FlowKey{Src: r.Src, Dst: r.Dst, SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto}
		gen.HandleDecision(Decision{Key: key, Label: 1, At: r.At})
		n++
		if n == 10 {
			break
		}
	}
	if gen.Escalated == 0 {
		t.Error("scan decisions never escalated to a source rule")
	}
}

func TestFacadeMicroburstDetector(t *testing.T) {
	w := BuildWorkload(ScaleTiny, 42)
	tb := NewTestbed(TestbedConfig{})
	det := NewMicroburstDetector(8, 2*Millisecond)
	tb.Collector.OnReport = det.Observe
	rp := tb.Replayer(w.Records)
	rp.Start()
	tb.Run()
	det.Flush()
	if len(det.Bursts) == 0 {
		t.Fatal("no microbursts from flood workload")
	}
	inEpisode := 0
	for _, b := range det.Bursts {
		if w.Schedule.ActiveAt(b.Start) == SYNFlood {
			inEpisode++
		}
	}
	if inEpisode == 0 {
		t.Error("no burst aligned with a flood episode")
	}
}

// TestIntegrationSmallScale asserts the paper's headline shapes at
// the default experiment scale. It is the repository's acceptance
// test and takes ~1 minute; skipped under -short.
func TestIntegrationSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("small-scale integration skipped in -short mode")
	}
	seed := int64(42)
	tables, err := Collect(DataConfig{Scale: ScaleSmall, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	t3, err := RunTableIII(tables, seed)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]EvalResult{}
	for _, r := range t3.Rows {
		byKey[r.Data+"/"+r.Model] = r
	}
	// Table III shapes: INT RF/KNN/NN ≥ 0.99; GNB the weakest model on
	// both sources.
	for _, k := range []string{"INT/RF", "INT/KNN", "INT/NN"} {
		if a := byKey[k].Scores.Accuracy; a < 0.99 {
			t.Errorf("%s accuracy = %v, want ≥0.99", k, a)
		}
	}
	if byKey["INT/GNB"].Scores.F1 >= byKey["INT/RF"].Scores.F1 {
		t.Error("GNB should be the weakest INT model")
	}
	if byKey["sFlow/GNB"].Scores.F1 >= byKey["sFlow/RF"].Scores.F1 {
		t.Error("GNB should be the weakest sFlow model")
	}

	// Table IV shapes: INT stays ≥0.99 on RF/KNN/NN; sFlow NN
	// degenerates (recall 0) against the zero-day split; sFlow GNB
	// precision drops.
	t4, err := RunTableIV(tables, seed)
	if err != nil {
		t.Fatal(err)
	}
	by4 := map[string]EvalResult{}
	for _, r := range t4 {
		by4[r.Data+"/"+r.Model] = r
	}
	for _, k := range []string{"INT/RF", "INT/KNN", "INT/NN"} {
		if a := by4[k].Scores.Accuracy; a < 0.99 {
			t.Errorf("zero-day %s accuracy = %v, want ≥0.99", k, a)
		}
	}
	// The paper's sFlow NN collapses to recall 0 against the zero-day
	// split; ours collapses to well under half the INT NN's recall.
	if r, ir := by4["sFlow/NN"].Scores.Recall, by4["INT/NN"].Scores.Recall; r > ir/2 || r > 0.5 {
		t.Errorf("zero-day sFlow NN recall = %v (INT NN %v), want a collapse", r, ir)
	}
	if p := by4["sFlow/GNB"].Scores.Precision; p > by4["INT/GNB"].Scores.Precision {
		t.Errorf("zero-day sFlow GNB precision %v should drop below INT GNB %v",
			p, by4["INT/GNB"].Scores.Precision)
	}

	// Figure 5 shape: at the production-proportional sampling rate,
	// sFlow captures nothing inside the SlowLoris episodes while INT
	// covers all four attack types.
	coverage, err := Collect(DataConfig{
		Scale: ScaleSmall, Seed: seed, SFlowRate: CoverageSFlowRate(ScaleSmall),
	})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunFigure5(coverage, 240, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got := fig.CoverageOfType(fig.SFlow, SlowLoris); got != 0 {
		t.Errorf("sFlow captured %d SlowLoris observations, want 0 (Figure 5)", got)
	}
	for _, typ := range []string{SYNScan, UDPScan, SYNFlood, SlowLoris} {
		if fig.CoverageOfType(fig.INT, typ) == 0 {
			t.Errorf("INT missed %s entirely", typ)
		}
	}

	// Table VI shapes: every attack ≥0.97, zero-day SlowLoris ≥0.95,
	// benign prediction latency far above every attack's.
	live, err := RunTableVI(LiveConfig{Scale: ScaleSmall, Seed: seed, PacketsPerType: 1500})
	if err != nil {
		t.Fatal(err)
	}
	var benignAvg, attackMax float64
	for _, r := range live.Rows {
		switch r.Type {
		case Benign:
			benignAvg = r.AvgLatency.Seconds()
		case SlowLoris:
			if r.Accuracy < 0.95 {
				t.Errorf("zero-day SlowLoris accuracy = %v", r.Accuracy)
			}
		default:
			if r.Accuracy < 0.97 {
				t.Errorf("%s accuracy = %v", r.Type, r.Accuracy)
			}
		}
		if r.Type != Benign && r.AvgLatency.Seconds() > attackMax {
			attackMax = r.AvgLatency.Seconds()
		}
	}
	if benignAvg < 5*attackMax {
		t.Errorf("benign avg latency %.2fs not ≫ attack max %.2fs", benignAvg, attackMax)
	}
}

func TestFormatHelpersThroughFacade(t *testing.T) {
	if !strings.Contains(FormatTableII(RunTableII()), "TABLE II") {
		t.Error("FormatTableII broken")
	}
}
