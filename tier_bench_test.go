// BenchmarkTieredLive / BenchmarkTieredScoring: throughput of the
// tiered-inference cascade on a benign-heavy stream, end-to-end and
// through the scoring stack in isolation. See `make bench-tier`.
package intddos

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/ml"
)

// tierBenchResult is one tiered-inference benchmark configuration's
// outcome — end-to-end (BenchmarkTieredLive) or scoring-stack-only
// (BenchmarkTieredScoring, "score-" prefix) — accumulated across
// sub-benchmarks and dumped as BENCH_tier.json.
type tierBenchResult struct {
	Config     string  `json:"config"` // "baseline" or "<model>-<threshold>"
	Triage     bool    `json:"triage"`
	Model      string  `json:"model,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	BenignFrac float64 `json:"benign_frac"`
	NsPerRow   float64 `json:"ns_per_row"`
	RowsPerSec float64 `json:"rows_per_sec"`
	// Decisions/Predictions over the whole sub-benchmark (the poller
	// coalesces per-flow updates, so these trail ingested rows).
	Decisions   int64   `json:"decisions"`
	Predictions int64   `json:"predictions"`
	ExitRate    float64 `json:"exit_rate"` // fraction of decisions with Stage > 0
	// SpeedupVsBaseline is rows_per_sec over the baseline sub-bench's
	// (0 until the baseline has run).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

var (
	tierBenchMu      sync.Mutex
	tierBenchResults []tierBenchResult
)

// tierBenchReports materializes the capture's INT reports once and
// splits them by ground truth, so the sweep can compose a replayable
// stream at any benign fraction.
var tierBenchReports = sync.OnceValues(func() (benign, attack []*Report) {
	c, err := Collect(DataConfig{Scale: ScaleTiny, Seed: 42})
	if err != nil {
		return nil, nil
	}
	tb := NewTestbed(TestbedConfig{})
	tb.Collector.OnReport = func(r *Report, _ Time) {
		if len(benign)+len(attack) >= 40000 {
			return
		}
		if r.Truth.Label {
			attack = append(attack, r)
		} else {
			benign = append(benign, r)
		}
	}
	rp := tb.Replayer(c.Workload.Records)
	rp.MaxPackets = 40000
	rp.Start()
	tb.Run()
	return benign, attack
})

// BenchmarkTieredLive drives a 95%-benign report stream — the shape
// the cascade exists for: production telemetry is almost entirely
// benign, and the paper's Table VI prediction times are dominated by
// it — through the wall-clock runtime with the full MLP+RF+GNB
// ensemble, comparing the untiered baseline against the cascade at
// representative stage-0 models and thresholds. The timed region
// covers ingest through a drained journal, so rows_per_sec is the
// end-to-end data-path rate. Results accumulate into BENCH_tier.json
// via the BENCH_TIER_OUT environment variable.
func BenchmarkTieredLive(b *testing.B) {
	const benignFrac = 0.95
	models, byName, scaler := tierBenchModels(b)
	benign, attack := tierBenchReports()
	if len(benign) == 0 || len(attack) == 0 {
		b.Fatalf("report pool: %d benign, %d attack", len(benign), len(attack))
	}

	var baselineRate float64
	for _, cfg := range tierBenchConfigs {
		b.Run(cfg.name, func(b *testing.B) {
			var stage0 Classifier
			if cfg.model != "" {
				stage0 = byName[cfg.model]
			}
			live, err := NewLiveRuntime(LiveRuntimeConfig{
				Models: models, Scaler: scaler, ModelQuorum: 2,
				PredictBatch: 32,
				Triage:       cfg.model != "", TriageThreshold: cfg.threshold, TriageModel: stage0,
			})
			if err != nil {
				b.Fatal(err)
			}
			live.Start()
			defer live.Stop()

			b.ReportAllocs()
			b.ResetTimer()
			bi, ai := 0, 0
			for i := 0; i < b.N; i++ {
				// 19 of 20 rows benign: the 95% mix, flows cycling
				// through the capture's real feature distributions.
				if i%20 != 0 {
					live.HandleReport(benign[bi%len(benign)])
					bi++
				} else {
					live.HandleReport(attack[ai%len(attack)])
					ai++
				}
			}
			// The scoring stack is the measurand: keep the clock running
			// until every journaled update has been decided or shed.
			deadline := time.Now().Add(30 * time.Second)
			for time.Now().Before(deadline) {
				if live.IngestBacklog() == 0 && live.DB.JournalLen() == 0 &&
					int(live.Predictions.Load())+int(live.Shed.Load()) > 0 {
					break
				}
				time.Sleep(200 * time.Microsecond)
			}
			b.StopTimer()
			nsPerRow := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

			decisions := live.Decisions()
			exited := 0
			for _, d := range decisions {
				if d.Stage > 0 {
					exited++
				}
			}
			res := tierBenchResult{
				Config: cfg.name, Triage: cfg.model != "",
				Model: cfg.model, Threshold: cfg.threshold,
				BenignFrac:  benignFrac,
				NsPerRow:    nsPerRow,
				RowsPerSec:  1e9 / nsPerRow,
				Decisions:   int64(len(decisions)),
				Predictions: int64(live.Predictions.Load()),
			}
			if len(decisions) > 0 {
				res.ExitRate = float64(exited) / float64(len(decisions))
			}
			if cfg.name == "baseline" {
				baselineRate = res.RowsPerSec
			} else if baselineRate > 0 {
				res.SpeedupVsBaseline = res.RowsPerSec / baselineRate
			}
			b.ReportMetric(res.RowsPerSec, "rows/sec")
			b.ReportMetric(100*res.ExitRate, "exit%")
			if res.SpeedupVsBaseline > 0 {
				b.ReportMetric(res.SpeedupVsBaseline, "speedup")
			}
			recordTierBench(b, res)
		})
	}
}

// tierBenchConfigs is the shared sweep grid: the untiered baseline
// plus representative stage-0 model × threshold points.
var tierBenchConfigs = []struct {
	name      string
	model     string // "" = baseline (triage off)
	threshold float64
}{
	{"baseline", "", 0},
	{"rf-0.95", "RF", 0.95},
	{"gnb-0.95", "GNB", 0.95},
	{"gnb-0.90", "GNB", 0.90},
}

// tierBenchModels trains the stage-two ensemble on the shared capture
// and returns it with its scaler and a by-name index.
func tierBenchModels(b *testing.B) ([]Classifier, map[string]Classifier, *StandardScaler) {
	b.Helper()
	c := benchSetup(b)
	train, _ := c.INT.Split(0.1, 42)
	sub := train.Subsample(20000, 42)
	scaler := &StandardScaler{}
	Z, err := scaler.FitTransform(sub.X)
	if err != nil {
		b.Fatal(err)
	}
	var models []Classifier
	byName := map[string]Classifier{}
	for _, spec := range StageTwoModels() {
		m := spec.New(42)
		if err := m.Fit(Z, sub.Y); err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
		byName[spec.Name] = m
	}
	return models, byName, scaler
}

// BenchmarkTieredScoring isolates the layer the cascade actually
// shortens: standardized features of a 95%-benign stream pushed
// through the voting stack, untiered versus triaged. The end-to-end
// pipeline (BenchmarkTieredLive) wraps ~20µs of per-row transport
// around this ~1.4µs ensemble call on a single-core host, so the
// cascade's speedup is visible here and diluted there; both land in
// BENCH_tier.json as "score-*" and plain rows.
func BenchmarkTieredScoring(b *testing.B) {
	const benignFrac = 0.95
	c := benchSetup(b)
	models, byName, scaler := tierBenchModels(b)
	_, test := c.INT.Split(0.1, 42)
	var benignX, attackX [][]float64
	for i, y := range test.Y {
		if y == 0 {
			benignX = append(benignX, test.X[i])
		} else {
			attackX = append(attackX, test.X[i])
		}
	}
	if len(benignX) == 0 || len(attackX) == 0 {
		b.Fatalf("test rows: %d benign, %d attack", len(benignX), len(attackX))
	}
	const rows = 8192
	mix := make([][]float64, 0, rows)
	for i, bi, ai := 0, 0, 0; i < rows; i++ {
		if i%20 != 0 {
			mix = append(mix, benignX[bi%len(benignX)])
			bi++
		} else {
			mix = append(mix, attackX[ai%len(attackX)])
			ai++
		}
	}
	X := scaler.Transform(mix)

	var baselineRate float64
	for _, cfg := range tierBenchConfigs {
		b.Run(cfg.name, func(b *testing.B) {
			var cas *ml.Cascade
			if cfg.model != "" {
				cas = &ml.Cascade{Stages: []ml.CascadeStage{{
					Name:      cfg.model,
					Model:     byName[cfg.model].(ml.BatchProbaClassifier),
					Threshold: cfg.threshold,
				}}}
			}
			vs := &ml.VoteScratch{}
			cs := &ml.CascadeScratch{}
			sub := make([][]float64, 0, len(X))
			exited := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cas == nil {
					ml.EnsembleVotesInto(vs, models, X)
					continue
				}
				stage, _ := cas.TriageBatch(X, nil, cs)
				sub = sub[:0]
				for j := range X {
					if stage[j] == 0 {
						sub = append(sub, X[j])
					}
				}
				if i == 0 {
					exited = len(X) - len(sub)
				}
				if len(sub) > 0 {
					ml.EnsembleVotesInto(vs, models, sub)
				}
			}
			b.StopTimer()
			nsPerRow := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(X))
			res := tierBenchResult{
				Config: "score-" + cfg.name, Triage: cfg.model != "",
				Model: cfg.model, Threshold: cfg.threshold,
				BenignFrac: benignFrac,
				NsPerRow:   nsPerRow,
				RowsPerSec: 1e9 / nsPerRow,
				ExitRate:   float64(exited) / float64(len(X)),
			}
			if cfg.name == "baseline" {
				baselineRate = res.RowsPerSec
			} else if baselineRate > 0 {
				res.SpeedupVsBaseline = res.RowsPerSec / baselineRate
			}
			b.ReportMetric(nsPerRow, "ns/row")
			b.ReportMetric(100*res.ExitRate, "exit%")
			if res.SpeedupVsBaseline > 0 {
				b.ReportMetric(res.SpeedupVsBaseline, "speedup")
			}
			recordTierBench(b, res)
		})
	}
}

// recordTierBench keeps the latest result per configuration (the
// harness runs a sizing pass first) and rewrites the JSON dump.
func recordTierBench(b *testing.B, res tierBenchResult) {
	tierBenchMu.Lock()
	defer tierBenchMu.Unlock()
	replaced := false
	for i := range tierBenchResults {
		if tierBenchResults[i].Config == res.Config {
			tierBenchResults[i] = res
			replaced = true
			break
		}
	}
	if !replaced {
		tierBenchResults = append(tierBenchResults, res)
	}
	writeTierBench(b, tierBenchResults)
}

// writeTierBench rewrites the accumulated sweep as JSON when the
// BENCH_TIER_OUT environment variable names a file (caller holds
// tierBenchMu).
func writeTierBench(b *testing.B, results []tierBenchResult) {
	path := os.Getenv("BENCH_TIER_OUT")
	if path == "" {
		return
	}
	out := struct {
		Bench   string            `json:"bench"`
		When    string            `json:"when"`
		Results []tierBenchResult `json:"results"`
	}{
		Bench:   "BenchmarkTiered",
		When:    time.Now().UTC().Format(time.RFC3339),
		Results: results,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
