// realtime runs the detection pipeline the way a deployment would:
// the four modules as concurrent goroutines on the wall clock, fed by
// INT report datagrams arriving on a real UDP socket. The telemetry
// itself comes from a simulated capture — the sink's reports are
// re-exported over localhost — so the example is self-contained while
// exercising the exact ingestion path a production collector uses.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleTiny, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "experiment seed")
	maxReports := flag.Int("reports", 6000, "reports to stream over the socket")
	flag.Parse()

	// 1. Pre-train an RF offline, as the Prediction module expects.
	capture, err := intddos.Collect(intddos.DataConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	train, _ := capture.INT.Split(0.1, *seed)
	model, scaler, err := intddos.FitModel(intddos.StageOneModels()[0], train.Subsample(20000, *seed), *seed)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Wall-clock pipeline: UDP collector → Live runtime.
	live, err := intddos.NewLiveRuntime(intddos.LiveRuntimeConfig{
		Models: []intddos.Classifier{model},
		Scaler: scaler,
	})
	if err != nil {
		log.Fatal(err)
	}
	col, err := intddos.ListenReports("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	col.OnReport = func(r *intddos.Report, _ intddos.Time) { live.HandleReport(r) }
	col.Start()
	live.Start()
	fmt.Printf("collector listening on %s\n", col.Addr())

	// 3. Re-export the simulated sink's reports over the socket.
	var reports []*intddos.Report
	tb := intddos.NewTestbed(intddos.TestbedConfig{})
	tb.Collector.OnReport = func(r *intddos.Report, _ intddos.Time) {
		if len(reports) < *maxReports {
			reports = append(reports, r)
		}
	}
	rp := tb.Replayer(capture.Workload.Records)
	rp.MaxPackets = *maxReports
	rp.Start()
	tb.Run()

	snd, err := intddos.DialReports(col.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for i, r := range reports {
		if err := snd.Send(r); err != nil {
			log.Fatal(err)
		}
		// Pace in small batches so the UDP socket buffer never
		// overflows (time.Sleep granularity makes per-packet pacing
		// needlessly slow).
		if i%64 == 63 {
			time.Sleep(2 * time.Millisecond)
		}
	}
	snd.Close()

	// 4. Drain, then join decisions against ground truth offline (the
	//    wire carries no labels, as in a real deployment).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		received := int(col.Received.Load())
		done := len(live.Decisions()) + int(live.Shed.Load())
		if received >= len(reports) && done >= received {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	live.Stop()
	col.Close()

	truth := make(map[intddos.FlowKey]bool)
	for i := range capture.Workload.Records {
		r := &capture.Workload.Records[i]
		truth[intddos.FlowKey{
			Src: r.Src, Dst: r.Dst, SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto,
		}] = r.Label
	}
	correct, flagged := 0, 0
	decisions := live.Decisions()
	var worstLatency time.Duration
	for _, d := range decisions {
		if d.Label == 1 {
			flagged++
		}
		if (d.Label == 1) == truth[d.Key] {
			correct++
		}
		if lat := time.Duration(d.Latency); lat > worstLatency {
			worstLatency = lat
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("streamed %d reports in %v (%.0f reports/s)\n",
		len(reports), elapsed.Round(time.Millisecond), float64(len(reports))/elapsed.Seconds())
	fmt.Printf("socket: %d received, %d decode errors; pipeline: %d decisions, %d shed\n",
		col.Received.Load(), col.DecodeErrors.Load(), len(decisions), live.Shed.Load())
	if len(decisions) == 0 {
		log.Fatal("no decisions produced")
	}
	fmt.Printf("accuracy vs ground truth: %.4f (%d flagged as attack), worst wall-clock latency %v\n",
		float64(correct)/float64(len(decisions)), flagged, worstLatency.Round(time.Microsecond))
}
