// microburst demonstrates the telemetry substrate on the use case
// AmLight deployed before DDoS detection (the paper's reference [8]):
// finding sub-second queue-buildup events from per-packet INT data.
// SYN-flood bursts create exactly such queue spikes, so the detector
// doubles as a coarse flood alarm.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleTiny, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "generation seed")
	threshold := flag.Uint("threshold", 8, "queue depth (packets) marking congestion")
	flag.Parse()

	w := intddos.BuildWorkload(*scale, *seed)
	tb := intddos.NewTestbed(intddos.TestbedConfig{})
	det := intddos.NewMicroburstDetector(uint32(*threshold), 2*intddos.Millisecond)
	tb.Collector.OnReport = det.Observe

	rp := tb.Replayer(w.Records)
	rp.Start()
	tb.Run()
	det.Flush()

	fmt.Printf("replayed %d packets; detected %d microbursts (threshold %d pkts)\n",
		rp.Sent(), len(det.Bursts), *threshold)
	inEpisode := 0
	for i, b := range det.Bursts {
		active := w.Schedule.ActiveAt(b.Start)
		if active != "" {
			inEpisode++
		}
		if i < 12 {
			label := active
			if label == "" {
				label = "outside episodes"
			}
			fmt.Printf("  burst %2d: start=%v dur=%v peak=%d pkts=%d (%s)\n",
				i, b.Start, b.Duration(), b.PeakDepth, b.Packets, label)
		}
	}
	if len(det.Bursts) > 12 {
		fmt.Printf("  ... and %d more\n", len(det.Bursts)-12)
	}
	if len(det.Bursts) == 0 {
		log.Fatal("no microbursts detected — lower the threshold")
	}
	fmt.Printf("%d of %d bursts fall inside attack episodes\n", inEpisode, len(det.Bursts))
}
