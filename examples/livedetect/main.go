// livedetect reproduces the paper's second experimental stage: the
// automated detection mechanism running live on the simulated
// testbed (Table VI, Figure 7), then demonstrates the mitigation
// extension by turning the mechanism's verdicts into drop rules.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleSmall, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "experiment seed")
	packets := flag.Int("packets", 2500, "packets replayed per flow type")
	flag.Parse()

	live, err := intddos.RunTableVI(intddos.LiveConfig{
		Scale: *scale, Seed: *seed, PacketsPerType: *packets,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(intddos.FormatTableVI(live))
	fmt.Println()
	fmt.Print(intddos.FormatFigure7(live, intddos.Benign, 100))
	fmt.Println()
	fmt.Print(intddos.FormatFigure7(live, intddos.SlowLoris, 100))
	fmt.Println()

	// Extension: feed the SYN-scan run's decisions into the
	// flow-rule generator the paper lists as future work. The scan
	// comes from one source, so per-flow rules quickly escalate to a
	// single source-scoped drop rule.
	gen := intddos.NewRuleGenerator(intddos.MitigateConfig{})
	for _, d := range live.Decisions[intddos.SYNScan] {
		gen.HandleDecision(d)
	}
	fmt.Printf("mitigation extension (SYN scan run): %d rules generated, %d source escalations\n",
		gen.Generated, gen.Escalated)
	for i, r := range gen.Rules() {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", gen.Len()-5)
			break
		}
		fmt.Printf("  %v\n", r)
	}
}
