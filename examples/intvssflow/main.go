// intvssflow reproduces the paper's first experimental stage: the
// comparison of INT against sampled sFlow for DDoS detection across
// four ML model families (Tables III and IV, Figures 3–5). The
// headline: both sources support accurate models, but sampling makes
// sFlow blind to the low-rate SlowLoris episodes.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/amlight/intddos"
)

func main() {
	scale := flag.String("scale", intddos.ScaleSmall, "workload scale: tiny, small, or full")
	seed := flag.Int64("seed", 42, "experiment seed")
	flag.Parse()

	// Capture once at the tables sampling rate (enough sFlow rows to
	// train on) and once at the production-proportional coverage rate
	// (faithful per-episode sampling behaviour).
	tables, err := intddos.Collect(intddos.DataConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	coverage, err := intddos.Collect(intddos.DataConfig{
		Scale: *scale, Seed: *seed, SFlowRate: intddos.CoverageSFlowRate(*scale),
	})
	if err != nil {
		log.Fatal(err)
	}

	t3, err := intddos.RunTableIII(tables, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(intddos.FormatEvalRows("TABLE III: INT vs sFlow, 90:10 split", t3.Rows))
	fmt.Println(intddos.FormatConfusion("FIGURE 3: RF on INT", t3.RFConfusionINT))
	fmt.Println(intddos.FormatConfusion("FIGURE 4: RF on sFlow", t3.RFConfusionSFlow))

	t4, err := intddos.RunTableIV(tables, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(intddos.FormatEvalRows("TABLE IV: zero-day split (SlowLoris unseen)", t4))

	fig, err := intddos.RunFigure5(coverage, 240, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(intddos.FormatFigure5(fig))
	fmt.Println(intddos.FormatEpisodeCoverage(
		intddos.RunEpisodeCoverage(coverage), coverage.Config.SFlowRate))

	// The quantitative version of Figure 5's takeaway.
	intLoris := fig.CoverageOfType(fig.INT, intddos.SlowLoris)
	sfLoris := fig.CoverageOfType(fig.SFlow, intddos.SlowLoris)
	fmt.Printf("SlowLoris visibility: INT saw %d observations, sFlow saw %d at 1/%d sampling\n",
		intLoris, sfLoris, coverage.Config.SFlowRate)
}
