// Quickstart: generate a compressed AmLight-style capture, collect
// INT telemetry through the simulated testbed, train a Random Forest
// on the Table II feature set, and score it — the smallest end-to-end
// path through the library.
package main

import (
	"fmt"
	"log"

	"github.com/amlight/intddos"
)

func main() {
	// 1. Replay a synthetic capture (benign web traffic + the Table I
	//    attack episodes) through the Figure 6 testbed with INT and
	//    sFlow monitoring attached.
	capture, err := intddos.Collect(intddos.DataConfig{
		Scale: intddos.ScaleTiny,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture: %d packets → %d INT rows (%d features), %d sFlow rows (%d features)\n",
		len(capture.Workload.Records),
		capture.INT.Len(), capture.INT.Features(),
		capture.SFlow.Len(), capture.SFlow.Features())

	// 2. Train a Random Forest on the INT feature rows (90:10 split).
	train, test := capture.INT.Split(0.1, 42)
	rf := intddos.StageOneModels()[0]
	res, err := intddos.TrainEval(rf, train, test, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	fmt.Printf("RF on INT: accuracy=%.4f recall=%.4f precision=%.4f F1=%.4f\n",
		res.Scores.Accuracy, res.Scores.Recall, res.Scores.Precision, res.Scores.F1)
	fmt.Print(intddos.FormatConfusion("confusion matrix:", res.Confusion))
}
