module github.com/amlight/intddos

go 1.22
