# Developer entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite, the race pass, a short fuzz
# smoke over every wire-format parser, the chaos smoke (the
# fault-injection suite under the race detector), the recovery smoke
# (kill -9 a checkpointing live pipeline, restart, verify restore and
# closed accounting), the diagnostics smoke (pull and validate
# diagnostic bundles from a running pipeline), and the soak smoke (the
# live pipeline under an impaired wire plus a scrambled multi-pass
# feed, with both accounting ledgers required to close).

GO ?= go

.PHONY: check vet build test race bench bench-obs bench-shard bench-shard-smoke bench-batch bench-checkpoint bench-checkpoint-smoke bench-tier bench-tier-smoke fuzz-smoke chaos-smoke recovery-smoke diag-smoke soak-smoke impair-smoke clean

check: vet build test race fuzz-smoke chaos-smoke recovery-smoke diag-smoke soak-smoke bench-checkpoint-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector's ~15x slowdown pushes the heavyweight experiment
# replays past the package timeout, so the race pass covers the
# packages where goroutines actually interact.
race:
	$(GO) test -race ./internal/core/... ./internal/obs/... \
		./internal/store/... ./internal/telemetry/... \
		./internal/netsim/... ./internal/flow/... \
		./internal/checkpoint/... ./internal/ml/sketch/...

# fuzz-smoke runs each fuzz target for 10s from its committed seed
# corpus (testdata/fuzz/) — enough to catch format-level regressions
# without turning `make check` into a fuzzing campaign.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeHeader$$' -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeHop$$' -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeReport$$' -fuzztime $(FUZZTIME) ./internal/telemetry/
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/sflow/
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz '^FuzzSketch$$' -fuzztime $(FUZZTIME) ./internal/ml/sketch/

# chaos-smoke runs the fault-injection suite under the race detector:
# the injector/wrapper unit tests plus every chaos scenario against
# the live pipeline (supervised workers, store retries, quorum
# degradation, shed/abandon accounting). Fault schedules are
# seed-driven, so the run is deterministic per seed.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/fault/
	$(GO) test -race -count=1 -run \
		'TestChaos|TestWorkerPanic|TestQuorum|TestModelRecovers|TestStoreRetries|TestDrainOnStop|TestShardShed|TestHealthz|TestMalformed|TestKillRestore|TestRestoreRejects|TestPeriodicCheckpointer|TestSweepBounds' \
		./internal/core/

# recovery-smoke kills a checkpointing live pipeline with SIGKILL and
# verifies a restart restores from the surviving checkpoint and closes
# its accounting (scripts/recovery_smoke.sh).
recovery-smoke:
	bash scripts/recovery_smoke.sh

# diag-smoke runs the live pipeline with the obs server on an
# ephemeral port, pulls /debug/bundle while it runs, collects the
# -diag-bundle exit bundle, and validates both archives with
# scripts/diagcheck (scripts/diag_smoke.sh).
diag-smoke:
	bash scripts/diag_smoke.sh

# soak-smoke runs the adverse-network soak under the race detector:
# the stage-2 ensemble fed a multi-pass reordered/duplicated/stale
# report stream materialized through a lossy wire, with a fault
# schedule firing inside the pipeline. Passes only if the report and
# pipeline ledgers both close and accuracy loss stays bounded (~30s).
soak-smoke:
	$(GO) test -race -count=1 -run TestSoakSmoke ./internal/experiment/

# impair-smoke regenerates the trimmed impairment sweep (baseline +
# the 1% loss / 0.1% dup acceptance point) and validates the artifact
# with diagcheck: accounting closed on every row, sane accuracies.
impair-smoke:
	$(GO) run ./cmd/reproduce -scale tiny -only impair -impair-quick \
		-impair-out $(CURDIR)/impair_smoke.json
	$(GO) run ./scripts/diagcheck -impair $(CURDIR)/impair_smoke.json
	rm -f $(CURDIR)/impair_smoke.json

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-obs runs the live-pipeline latency benchmark and writes the
# stage/prediction latency percentiles to BENCH_obs.json.
bench-obs:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run '^$$' \
		-bench BenchmarkLivePipeline_Latency -benchtime 5000x .
	@echo wrote $(CURDIR)/BENCH_obs.json

# bench-shard sweeps the sharded pipeline (legacy baseline plus
# shards×workers configurations) with mutex/block profiling on and
# writes the throughput/contention table — plus the sweep-wide
# contention attribution (blocked time by pipeline stage) — to
# BENCH_shard.json. 50000 ingests per configuration: the contention
# counters and profiles need enough overlapping operations to sample
# the serialization points, especially on few-core hosts.
bench-shard:
	BENCH_SHARD_OUT=$(CURDIR)/BENCH_shard.json $(GO) test -run '^$$' \
		-bench BenchmarkShardScaling -benchtime 50000x .
	@echo wrote $(CURDIR)/BENCH_shard.json

# bench-shard-smoke is the CI gate for the scaling sweep: one short
# iteration per configuration (enough to exercise the multi-producer
# demux and the contention sampling, not to measure), then diagcheck
# validates the JSON shape — legacy baseline row, sharded rows,
# positive throughput, populated contention attribution.
bench-shard-smoke:
	BENCH_SHARD_OUT=$(CURDIR)/BENCH_shard_smoke.json $(GO) test -run '^$$' \
		-bench BenchmarkShardScaling -benchtime 1000x .
	$(GO) run ./scripts/diagcheck -bench-shard $(CURDIR)/BENCH_shard_smoke.json
	rm -f $(CURDIR)/BENCH_shard_smoke.json

# bench-tier sweeps tiered inference on a 95%-benign stream — the
# end-to-end pipeline (BenchmarkTieredLive) and the scoring stack in
# isolation (BenchmarkTieredScoring) — across stage-0 models and
# thresholds, and writes throughput, exit rate, and speedup per
# configuration to BENCH_tier.json. 20000 iterations: the live halves
# need enough rows per config for stable decision/exit accounting.
bench-tier:
	BENCH_TIER_OUT=$(CURDIR)/BENCH_tier.json $(GO) test -run '^$$' \
		-bench BenchmarkTiered -benchtime 20000x -timeout 30m .
	@echo wrote $(CURDIR)/BENCH_tier.json

# bench-tier-smoke is the CI gate for the tiered-inference sweep: a
# short pass per configuration (enough to exercise the cascade and the
# exit accounting, not to measure), then diagcheck validates the JSON
# shape — untiered baselines, triaged rows, positive throughput, exit
# rates in [0, 1], speedups recorded.
bench-tier-smoke:
	BENCH_TIER_OUT=$(CURDIR)/BENCH_tier_smoke.json $(GO) test -run '^$$' \
		-bench BenchmarkTiered -benchtime 200x .
	$(GO) run ./scripts/diagcheck -bench-tier $(CURDIR)/BENCH_tier_smoke.json
	rm -f $(CURDIR)/BENCH_tier_smoke.json

# bench-batch sweeps batched ensemble scoring and the live runtime
# across micro-batch sizes (1/8/32/128) and writes the throughput and
# speedup table to BENCH_batch.json.
bench-batch:
	BENCH_BATCH_OUT=$(CURDIR)/BENCH_batch.json $(GO) test -run '^$$' \
		-bench 'BenchmarkEnsembleBatchScaling|BenchmarkLiveBatchScaling' \
		-benchtime 2000x .
	@echo wrote $(CURDIR)/BENCH_batch.json

# bench-checkpoint measures checkpoint write (barrier + export +
# encode + atomic rename) and cold-boot restore at 10k/100k/1M
# resident flows and writes the sweep to BENCH_checkpoint.json.
bench-checkpoint:
	BENCH_CHECKPOINT_OUT=$(CURDIR)/BENCH_checkpoint.json $(GO) test -run '^$$' \
		-bench BenchmarkCheckpoint -benchtime 1x -timeout 30m .
	@echo wrote $(CURDIR)/BENCH_checkpoint.json

# bench-checkpoint-smoke is the CI gate for the checkpoint sweep: the
# smallest configuration only (enough to exercise capture, encode,
# atomic write, and restore — not to measure), then diagcheck
# validates the JSON shape: flow counts, positive size and write
# throughput, a barrier hold recorded and bounded by the write, and a
# restore that brought back every flow.
bench-checkpoint-smoke:
	BENCH_CHECKPOINT_OUT=$(CURDIR)/BENCH_checkpoint_smoke.json $(GO) test -run '^$$' \
		-bench 'BenchmarkCheckpoint/flows-10000$$' -benchtime 1x .
	$(GO) run ./scripts/diagcheck -bench-checkpoint $(CURDIR)/BENCH_checkpoint_smoke.json
	rm -f $(CURDIR)/BENCH_checkpoint_smoke.json

clean:
	rm -f BENCH_obs.json BENCH_shard.json BENCH_shard_smoke.json BENCH_batch.json BENCH_checkpoint.json BENCH_checkpoint_smoke.json BENCH_tier.json BENCH_tier_smoke.json impair_smoke.json
	$(GO) clean ./...
