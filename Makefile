# Developer entry points. `make check` is the gate every change must
# pass: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench bench-obs clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector's ~15x slowdown pushes the heavyweight experiment
# replays past the package timeout, so the race pass covers the
# packages where goroutines actually interact.
race:
	$(GO) test -race ./internal/core/... ./internal/obs/... \
		./internal/store/... ./internal/telemetry/... \
		./internal/netsim/... ./internal/flow/...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# bench-obs runs the live-pipeline latency benchmark and writes the
# stage/prediction latency percentiles to BENCH_obs.json.
bench-obs:
	BENCH_OBS_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run '^$$' \
		-bench BenchmarkLivePipeline_Latency -benchtime 5000x .
	@echo wrote $(CURDIR)/BENCH_obs.json

clean:
	rm -f BENCH_obs.json
	$(GO) clean ./...
